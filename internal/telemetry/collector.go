package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase histogram names, in rendering order. "total" is whole-query
// latency; the rest are per-lifecycle-phase.
var PhaseNames = []string{"total", "parse", "plan", "freeze", "compile", "execute", "output"}

// Collector owns an engine's (or a fleet of engines') aggregated
// telemetry: latency histograms per phase and per dispatch class, the
// live query registry, and the counter sources feeding /metrics. One
// collector may be shared by several engines (lhbench runs many); each
// engine registers its EngineMetrics counters as a source.
type Collector struct {
	Registry *Registry

	// Statements is the per-fingerprint statement-statistics store
	// (pg_stat_statements analog), shared by every engine bound to this
	// collector and exported on /debug/statements and /metrics.
	Statements *StatementStore

	phase map[string]*Histogram // fixed keys (PhaseNames), immutable after New

	mu       sync.RWMutex
	class    map[string]*Histogram // dispatch label → total-latency histogram
	counters []func() map[string]int64
}

// NewCollector creates an empty collector with its own registry.
func NewCollector() *Collector {
	c := &Collector{
		Registry:   NewRegistry(0),
		Statements: NewStatementStore(0),
		phase:      make(map[string]*Histogram, len(PhaseNames)),
		class:      map[string]*Histogram{},
	}
	for _, p := range PhaseNames {
		c.phase[p] = &Histogram{}
	}
	c.AddCounterSource(c.Statements.Counters)
	return c
}

// AddCounterSource registers a snapshot function whose values are
// summed into the /metrics counter export (one per engine).
func (c *Collector) AddCounterSource(f func() map[string]int64) {
	c.mu.Lock()
	c.counters = append(c.counters, f)
	c.mu.Unlock()
}

// ObservePhase records one phase duration (no-op for unknown phases).
func (c *Collector) ObservePhase(phase string, d time.Duration) {
	if h := c.phase[phase]; h != nil {
		h.Record(d)
	}
}

// ObserveClass records one whole-query latency under its dispatch
// class (scalar-scan, dense-mm, spmv-gather, generic-wcoj, ...).
func (c *Collector) ObserveClass(class string, d time.Duration) {
	if class == "" {
		class = "unknown"
	}
	c.mu.RLock()
	h := c.class[class]
	c.mu.RUnlock()
	if h == nil {
		c.mu.Lock()
		h = c.class[class]
		if h == nil {
			h = &Histogram{}
			c.class[class] = h
		}
		c.mu.Unlock()
	}
	h.Record(d)
}

// PhaseSnapshot returns the named phase histogram's snapshot (nil for
// unknown phases).
func (c *Collector) PhaseSnapshot(phase string) *HistSnapshot {
	if h := c.phase[phase]; h != nil {
		return h.Snapshot()
	}
	return nil
}

// ClassSnapshots returns a snapshot per dispatch class seen so far.
func (c *Collector) ClassSnapshots() map[string]*HistSnapshot {
	c.mu.RLock()
	out := make(map[string]*HistSnapshot, len(c.class))
	for k, h := range c.class {
		out[k] = h.Snapshot()
	}
	c.mu.RUnlock()
	return out
}

// Counters sums every registered counter source into one flat map.
func (c *Collector) Counters() map[string]int64 {
	c.mu.RLock()
	srcs := append([]func() map[string]int64(nil), c.counters...)
	c.mu.RUnlock()
	out := map[string]int64{}
	for _, f := range srcs {
		for k, v := range f() {
			out[k] += v
		}
	}
	return out
}

// Quantiles exports p50/p95/p99 per phase and dispatch class as flat
// ns-valued gauges (lat_<name>_p50_ns, ...), skipping empty histograms.
// This is the map EngineMetrics merges into its Snapshot.
func (c *Collector) Quantiles() map[string]int64 {
	out := map[string]int64{}
	add := func(name string, s *HistSnapshot) {
		if s == nil || s.Count == 0 {
			return
		}
		key := sanitizeMetricName(name)
		out["lat_"+key+"_p50_ns"] = s.Quantile(0.50)
		out["lat_"+key+"_p95_ns"] = s.Quantile(0.95)
		out["lat_"+key+"_p99_ns"] = s.Quantile(0.99)
	}
	for _, p := range PhaseNames {
		add(p, c.phase[p].Snapshot())
	}
	for class, s := range c.ClassSnapshots() {
		add(class, s)
	}
	return out
}

// sanitizeMetricName maps a label to [a-z0-9_] (Prometheus-safe).
func sanitizeMetricName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// String renders counters, quantiles and in-flight count as sorted
// "key value" lines (the \metrics superset view).
func (c *Collector) String() string {
	m := c.Counters()
	for k, v := range c.Quantiles() {
		m[k] = v
	}
	m["inflight_queries"] = int64(c.Registry.NumActive())
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-26s %d\n", k, m[k])
	}
	return b.String()
}
