package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is log-linear over nanoseconds: each power-of-two
// octave is split into 2^histSubBits equal-width linear buckets, so
// relative bucket width (and therefore worst-case quantile error) is
// 2^-histSubBits ≈ 6%. Values below 2^histSubBits ns get exact unit
// buckets. Recording is one atomic add on the bucket plus two on the
// count/sum — lock-free and wait-free, safe from any goroutine.
const (
	histSubBits    = 4
	histSubBuckets = 1 << histSubBits // 16
	// 63-bit values: blocks 0..(63-histSubBits), histSubBuckets each.
	histNumBuckets = (64 - histSubBits) * histSubBuckets
)

// Histogram is a fixed-size log-linear latency histogram.
type Histogram struct {
	counts [histNumBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64 // total ns
	max    atomic.Int64
}

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSubBuckets {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // position of the leading bit
	sub := (v >> (uint(exp) - histSubBits)) & (histSubBuckets - 1)
	return (exp-histSubBits+1)<<histSubBits + int(sub)
}

// BucketBounds reports bucket i's half-open value range [lo, hi) in ns.
func BucketBounds(i int) (lo, hi int64) {
	block := i >> histSubBits
	sub := int64(i & (histSubBuckets - 1))
	if block == 0 {
		return sub, sub + 1
	}
	width := int64(1) << uint(block-1)
	lo = (histSubBuckets + sub) << uint(block-1)
	hi = lo + width
	if hi < lo { // top bucket: lo+width overflows int64
		hi = math.MaxInt64
	}
	return lo, hi
}

// Record adds one duration observation.
func (h *Histogram) Record(d time.Duration) { h.RecordNs(int64(d)) }

// RecordNs adds one observation in nanoseconds.
func (h *Histogram) RecordNs(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// HistSnapshot is a point-in-time copy of a histogram, mergeable and
// safe to read without synchronization. Concurrent recording makes a
// snapshot slightly torn (count vs buckets may differ by in-flight
// records); quantiles use the bucket sum so they stay self-consistent.
type HistSnapshot struct {
	Counts [histNumBuckets]uint64
	Count  uint64
	SumNs  int64
	MaxNs  int64
}

// Snapshot copies the current state.
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{SumNs: h.sum.Load(), MaxNs: h.max.Load()}
	var total uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		total += c
	}
	s.Count = total
	return s
}

// Merge folds another snapshot into s.
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.SumNs += o.SumNs
	if o.MaxNs > s.MaxNs {
		s.MaxNs = o.MaxNs
	}
}

// Quantile estimates the q-quantile (0 < q ≤ 1) in nanoseconds: the
// midpoint of the bucket containing the rank, so the error is at most
// half a bucket width. Returns 0 on an empty snapshot.
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i := range s.Counts {
		cum += s.Counts[i]
		if cum >= rank {
			lo, hi := BucketBounds(i)
			return lo + (hi-lo)/2
		}
	}
	return s.MaxNs
}

// MeanNs reports the mean observation (0 on empty).
func (s *HistSnapshot) MeanNs() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumNs / int64(s.Count)
}
