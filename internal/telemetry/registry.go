package telemetry

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// QueryInfo is one registry entry rendered for humans / JSON.
type QueryInfo struct {
	ID      uint64        `json:"id"`
	SQL     string        `json:"sql"`
	Start   time.Time     `json:"start"`
	Elapsed time.Duration `json:"elapsed_ns"`
	Phase   string        `json:"phase"`
	Span    string        `json:"span"`
	Done    bool          `json:"done"`
}

// ActiveQuery is one in-flight query's registry handle.
type ActiveQuery struct {
	id     uint64
	sql    string
	start  time.Time
	cancel context.CancelFunc
	trace  *Trace
	phase  atomic.Pointer[string]
}

// ID is the query's engine-unique ID (also the /debug/trace key).
func (a *ActiveQuery) ID() uint64 {
	if a == nil {
		return 0
	}
	return a.id
}

// SetPhase labels what the query is currently doing. Nil-safe so the
// engine can thread an optional handle without checks.
func (a *ActiveQuery) SetPhase(p string) {
	if a == nil {
		return
	}
	a.phase.Store(&p)
}

func (a *ActiveQuery) currentPhase() string {
	if p := a.phase.Load(); p != nil {
		return *p
	}
	return ""
}

// defaultRecentTraces bounds how many finished traces the registry
// retains for /debug/trace lookups.
const defaultRecentTraces = 64

// Registry tracks every in-flight query so a stuck one can be listed
// and cancelled, and retains a bounded ring of finished traces.
type Registry struct {
	nextID atomic.Uint64

	mu        sync.Mutex
	active    map[uint64]*ActiveQuery
	recent    map[uint64]*Trace
	recentSeq []uint64 // insertion order, oldest first
	recentCap int
}

// NewRegistry creates a registry retaining recentCap finished traces
// (≤0 selects the default).
func NewRegistry(recentCap int) *Registry {
	if recentCap <= 0 {
		recentCap = defaultRecentTraces
	}
	return &Registry{
		active:    map[uint64]*ActiveQuery{},
		recent:    map[uint64]*Trace{},
		recentCap: recentCap,
	}
}

// Register adds an in-flight query. cancel aborts it (may be nil);
// trace may be nil. The returned handle must be passed to Finish.
func (r *Registry) Register(sql string, cancel context.CancelFunc, trace *Trace) *ActiveQuery {
	a := &ActiveQuery{
		id:     r.nextID.Add(1),
		sql:    sql,
		start:  time.Now(),
		cancel: cancel,
		trace:  trace,
	}
	if trace != nil {
		trace.setID(a.id)
	}
	r.mu.Lock()
	r.active[a.id] = a
	r.mu.Unlock()
	return a
}

// Finish removes the query from the live set and retains its trace.
func (r *Registry) Finish(a *ActiveQuery) {
	if a == nil {
		return
	}
	r.mu.Lock()
	delete(r.active, a.id)
	if a.trace != nil {
		if _, dup := r.recent[a.id]; !dup {
			r.recent[a.id] = a.trace
			r.recentSeq = append(r.recentSeq, a.id)
			for len(r.recentSeq) > r.recentCap {
				delete(r.recent, r.recentSeq[0])
				r.recentSeq = r.recentSeq[1:]
			}
		}
	}
	r.mu.Unlock()
}

// List snapshots the in-flight queries, oldest first.
func (r *Registry) List() []QueryInfo {
	now := time.Now()
	r.mu.Lock()
	out := make([]QueryInfo, 0, len(r.active))
	for _, a := range r.active {
		out = append(out, QueryInfo{
			ID:      a.id,
			SQL:     a.sql,
			Start:   a.start,
			Elapsed: now.Sub(a.start),
			Phase:   a.currentPhase(),
			Span:    a.trace.Current(),
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumActive reports the number of in-flight queries.
func (r *Registry) NumActive() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.active)
}

// Cancel aborts the in-flight query with the given ID. It reports
// whether the ID was live and had a cancel function.
func (r *Registry) Cancel(id uint64) bool {
	r.mu.Lock()
	a := r.active[id]
	r.mu.Unlock()
	if a == nil || a.cancel == nil {
		return false
	}
	a.cancel()
	return true
}

// Trace finds a query's trace by ID: in-flight first, then the
// retained ring of finished traces. Nil when unknown or evicted.
func (r *Registry) Trace(id uint64) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if a, ok := r.active[id]; ok {
		return a.trace
	}
	return r.recent[id]
}

// TraceIDs lists the IDs with a retrievable trace (live + retained),
// ascending.
func (r *Registry) TraceIDs() []uint64 {
	r.mu.Lock()
	ids := make([]uint64, 0, len(r.active)+len(r.recentSeq))
	for id := range r.active {
		ids = append(ids, id)
	}
	ids = append(ids, r.recentSeq...)
	r.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
