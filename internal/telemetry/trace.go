// Package telemetry is the engine's always-on runtime telemetry:
// hierarchical per-query trace spans (query → phase → GHD node →
// kernel), log-linear latency histograms with lock-free recording, a
// live registry of in-flight queries, and an HTTP debug server exposing
// Prometheus metrics, the registry, span dumps and pprof.
//
// Hot-path discipline mirrors internal/obs: spans are recorded at
// query/phase/node granularity (never per tuple), each Begin/End is a
// monotonic clock read plus a short critical section on a per-query
// buffer, and histogram recording is a handful of atomics. The package
// sits below internal/obs in the dependency order (obs embeds a *Trace
// in QueryStats), so it imports only the standard library and
// internal/set.
package telemetry

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/set"
)

// SpanKind classifies a span's level in the query hierarchy.
type SpanKind uint8

const (
	// SpanQuery is the root span covering the whole query lifecycle.
	SpanQuery SpanKind = iota
	// SpanPhase covers one lifecycle phase (parse, plan, freeze,
	// compile, execute, output).
	SpanPhase
	// SpanNode covers one GHD node's WCOJ execution (children included).
	SpanNode
	// SpanKernel covers one specialized kernel invocation (dense BLAS,
	// SpMV fast path, scalar scan).
	SpanKernel
)

func (k SpanKind) String() string {
	switch k {
	case SpanQuery:
		return "query"
	case SpanPhase:
		return "phase"
	case SpanNode:
		return "node"
	case SpanKernel:
		return "kernel"
	}
	return "?"
}

// SpanID names one span inside its trace; 0 is "no span" and every
// operation on it is a no-op, so callers thread IDs without nil checks.
type SpanID int32

// Span is one recorded interval. Start/End are nanoseconds since the
// trace base (End == -1 while the span is open). Stats carries the
// intersection-kernel counters attributed to exactly this span (set for
// GHD-node spans; zero elsewhere).
type Span struct {
	ID     SpanID
	Parent SpanID
	Kind   SpanKind
	Name   string
	Start  int64
	End    int64
	Stats  set.Stats
}

// Dur is the span's duration (0 while open).
func (s *Span) Dur() time.Duration {
	if s.End < 0 {
		return 0
	}
	return time.Duration(s.End - s.Start)
}

// maxSpans bounds one trace's buffer; spans beyond it are counted as
// dropped rather than grown without bound (a runaway GHD would
// otherwise turn the trace into the memory hog it is meant to debug).
const maxSpans = 512

// Trace is one query's span buffer. All methods are safe on a nil
// receiver (no-ops), so execution code records spans unconditionally
// and pays nothing when tracing is not wired up.
type Trace struct {
	id   uint64 // registry-assigned query ID (0 until registered)
	sql  string
	base time.Time

	mu      sync.Mutex
	spans   []Span
	dropped int
}

// NewTrace starts a trace whose root span is the query itself.
func NewTrace(sql string) *Trace {
	t := &Trace{sql: sql, base: time.Now(), spans: make([]Span, 0, 16)}
	t.spans = append(t.spans, Span{ID: 1, Kind: SpanQuery, Name: "query", End: -1})
	return t
}

// ID reports the registry-assigned query ID (0 if never registered).
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// SQL reports the traced query text.
func (t *Trace) SQL() string {
	if t == nil {
		return ""
	}
	return t.sql
}

// setID is called once by the registry before the trace is shared.
func (t *Trace) setID(id uint64) { t.id = id }

// Root is the query span's ID.
func (t *Trace) Root() SpanID {
	if t == nil {
		return 0
	}
	return 1
}

// Begin opens a child span under parent and returns its ID.
func (t *Trace) Begin(parent SpanID, kind SpanKind, name string) SpanID {
	if t == nil || parent == 0 {
		return 0
	}
	now := time.Since(t.base).Nanoseconds()
	t.mu.Lock()
	if len(t.spans) >= maxSpans {
		t.dropped++
		t.mu.Unlock()
		return 0
	}
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Kind: kind, Name: name, Start: now, End: -1})
	t.mu.Unlock()
	return id
}

// End closes a span.
func (t *Trace) End(id SpanID) {
	if t == nil || id == 0 {
		return
	}
	now := time.Since(t.base).Nanoseconds()
	t.mu.Lock()
	if int(id) <= len(t.spans) {
		t.spans[id-1].End = now
	}
	t.mu.Unlock()
}

// EndWithStats closes a span and attaches kernel counters to it.
func (t *Trace) EndWithStats(id SpanID, st *set.Stats) {
	if t == nil || id == 0 {
		return
	}
	now := time.Since(t.base).Nanoseconds()
	t.mu.Lock()
	if int(id) <= len(t.spans) {
		sp := &t.spans[id-1]
		sp.End = now
		sp.Stats = *st
	}
	t.mu.Unlock()
}

// Add records an already-measured interval (used where the caller owns
// the time.Now pair, e.g. the core phase timers).
func (t *Trace) Add(parent SpanID, kind SpanKind, name string, start, end time.Time) SpanID {
	if t == nil || parent == 0 {
		return 0
	}
	t.mu.Lock()
	if len(t.spans) >= maxSpans {
		t.dropped++
		t.mu.Unlock()
		return 0
	}
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Kind: kind, Name: name,
		Start: start.Sub(t.base).Nanoseconds(), End: end.Sub(t.base).Nanoseconds(),
	})
	t.mu.Unlock()
	return id
}

// Finish closes the root span.
func (t *Trace) Finish() { t.End(t.Root()) }

// Dropped reports how many spans overflowed the buffer.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns a copy of the recorded spans in creation order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Current reports the name of the innermost still-open span — what the
// query is doing right now (registry listing of in-flight queries).
func (t *Trace) Current() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.spans) - 1; i >= 0; i-- {
		if t.spans[i].End < 0 {
			return t.spans[i].Name
		}
	}
	return ""
}

// TreeString renders the spans as an indented tree with durations and,
// where attached, kernel counters.
func (t *Trace) TreeString() string {
	if t == nil {
		return ""
	}
	spans := t.Spans()
	children := make(map[SpanID][]int, len(spans))
	for i := range spans {
		children[spans[i].Parent] = append(children[spans[i].Parent], i)
	}
	var b strings.Builder
	var walk func(idx, depth int)
	walk = func(idx, depth int) {
		sp := &spans[idx]
		dur := "open"
		if sp.End >= 0 {
			dur = sp.Dur().Round(time.Microsecond).String()
		}
		fmt.Fprintf(&b, "%s%-7s %s  %s", strings.Repeat("  ", depth), sp.Kind, sp.Name, dur)
		if sp.Stats.Total() > 0 {
			fmt.Fprintf(&b, "  isect=%d bytes=%d", sp.Stats.Total(), sp.Stats.BytesOut)
		}
		b.WriteByte('\n')
		for _, c := range children[sp.ID] {
			walk(c, depth+1)
		}
	}
	for _, rootIdx := range children[0] {
		walk(rootIdx, 0)
	}
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(&b, "(%d spans dropped)\n", d)
	}
	return b.String()
}

// chromeEvent is one Chrome trace_event ("X" = complete event); ts/dur
// are microseconds per the trace-event format.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]uint64 `json:"args,omitempty"`
}

// ChromeTraceJSON exports the trace in Chrome trace_event JSON (array
// form), loadable in chrome://tracing or Perfetto. Span depth maps to
// the tid so nested spans stack visually.
func (t *Trace) ChromeTraceJSON() ([]byte, error) {
	if t == nil {
		return []byte("[]"), nil
	}
	spans := t.Spans()
	depth := make(map[SpanID]int, len(spans))
	events := make([]chromeEvent, 0, len(spans))
	for i := range spans {
		sp := &spans[i]
		d := 0
		if sp.Parent != 0 {
			d = depth[sp.Parent] + 1
		}
		depth[sp.ID] = d
		end := sp.End
		if end < 0 {
			end = sp.Start // open span: zero-width marker
		}
		ev := chromeEvent{
			Name: sp.Name,
			Cat:  sp.Kind.String(),
			Ph:   "X",
			Ts:   float64(sp.Start) / 1e3,
			Dur:  float64(end-sp.Start) / 1e3,
			Pid:  1,
			Tid:  d + 1,
		}
		if sp.Stats.Total() > 0 {
			ev.Args = map[string]uint64{
				"intersections":      sp.Stats.Total(),
				"uint_uint_merge":    sp.Stats.UintUintMerge,
				"uint_uint_gallop":   sp.Stats.UintUintGallop,
				"bs_uint":            sp.Stats.BsUint,
				"bs_bs":              sp.Stats.BsBs,
				"bytes_materialized": sp.Stats.BytesOut,
			}
		}
		events = append(events, ev)
	}
	return json.Marshal(events)
}
