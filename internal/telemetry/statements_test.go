package telemetry

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func obsFor(fp uint64, durNs int64) StatementObservation {
	return StatementObservation{
		Fingerprint: fp,
		Text:        fmt.Sprintf("select ? -- %d", fp),
		DurNs:       durNs,
		Rows:        3,
		AllocBytes:  100,
		Order:       []string{"a", "b"},
		EstCost:     10,
		ActualCost:  20,
	}
}

func TestStatementStoreAccumulates(t *testing.T) {
	st := NewStatementStore(8)
	st.Record(obsFor(1, 1000))
	st.Record(obsFor(1, 3000))
	o := obsFor(1, 2000)
	o.Err = true
	st.Record(o)

	snaps := st.Snapshots("", 0)
	if len(snaps) != 1 {
		t.Fatalf("len(snaps) = %d, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Calls != 3 || s.Errors != 1 || s.Rows != 9 {
		t.Errorf("calls/errors/rows = %d/%d/%d, want 3/1/9", s.Calls, s.Errors, s.Rows)
	}
	if s.TotalNs != 6000 || s.MeanNs != 2000 || s.MaxNs != 3000 {
		t.Errorf("total/mean/max = %d/%d/%d, want 6000/2000/3000", s.TotalNs, s.MeanNs, s.MaxNs)
	}
	if s.EstCost != 30 || s.ActualCost != 60 || s.CostRatio != 2 {
		t.Errorf("est/actual/ratio = %g/%g/%g, want 30/60/2", s.EstCost, s.ActualCost, s.CostRatio)
	}
	if s.PlanChanges != 0 {
		t.Errorf("plan changes = %d, want 0 (order never moved)", s.PlanChanges)
	}
	if s.FingerprintHex != "0000000000000001" {
		t.Errorf("hex = %q", s.FingerprintHex)
	}
	if s.FirstSeen.IsZero() || s.LastSeen.Before(s.FirstSeen) {
		t.Errorf("first/last seen not monotone: %v / %v", s.FirstSeen, s.LastSeen)
	}
}

func TestStatementStoreIgnoresZeroFingerprint(t *testing.T) {
	st := NewStatementStore(8)
	st.Record(obsFor(0, 1000))
	if st.Len() != 0 {
		t.Fatalf("len = %d after fingerprint-0 record, want 0", st.Len())
	}
	// A nil store is a no-op everywhere (engines without telemetry).
	var nilStore *StatementStore
	nilStore.Record(obsFor(1, 1))
	if nilStore.Len() != 0 || nilStore.Snapshots("", 0) != nil {
		t.Error("nil store should no-op")
	}
}

func TestStatementStoreLRUEviction(t *testing.T) {
	st := NewStatementStore(4)
	for fp := uint64(1); fp <= 6; fp++ {
		st.Record(obsFor(fp, 1000))
	}
	if st.Len() != 4 {
		t.Fatalf("len = %d, want cap 4", st.Len())
	}
	if st.Evicted() != 2 {
		t.Fatalf("evicted = %d, want 2", st.Evicted())
	}
	// 1 and 2 were the least recently used; 3..6 survive.
	alive := map[string]bool{}
	for _, s := range st.Snapshots("", 0) {
		alive[s.FingerprintHex] = true
	}
	for _, want := range []uint64{3, 4, 5, 6} {
		if !alive[FingerprintHex(want)] {
			t.Errorf("fingerprint %d evicted, want it kept", want)
		}
	}
	// Touching an old entry protects it from the next eviction.
	st.Record(obsFor(3, 1000))
	st.Record(obsFor(7, 1000))
	alive = map[string]bool{}
	for _, s := range st.Snapshots("", 0) {
		alive[s.FingerprintHex] = true
	}
	if !alive[FingerprintHex(3)] {
		t.Error("recently-touched fingerprint 3 was evicted")
	}
	if alive[FingerprintHex(4)] {
		t.Error("LRU fingerprint 4 survived eviction")
	}
}

func TestStatementStorePlanDrift(t *testing.T) {
	st := NewStatementStore(8)
	o := obsFor(1, 1000)
	o.Epoch = 1
	st.Record(o)
	o.Epoch = 2
	st.Record(o) // same order: no drift
	o.Order = []string{"b", "a"}
	o.Epoch = 3
	st.Record(o) // order flipped: drift
	s := st.Snapshots("", 0)[0]
	if s.PlanChanges != 1 {
		t.Fatalf("plan changes = %d, want 1", s.PlanChanges)
	}
	if s.LastChangeEpoch != 3 {
		t.Errorf("last change epoch = %d, want 3", s.LastChangeEpoch)
	}
	if got := s.LastOrder; len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Errorf("last order = %v, want [b a]", got)
	}
	if c := st.Counters()["statement_plan_changes"]; c != 1 {
		t.Errorf("statement_plan_changes counter = %d, want 1", c)
	}
}

func TestStatementStoreSortAndLimit(t *testing.T) {
	st := NewStatementStore(8)
	for fp := uint64(1); fp <= 3; fp++ {
		for i := uint64(0); i < fp; i++ { // fp N gets N calls of N*1000ns
			st.Record(obsFor(fp, int64(fp*1000)))
		}
	}
	byTime := st.Snapshots("time", 0)
	if byTime[0].FingerprintHex != FingerprintHex(3) {
		t.Errorf("top by time = %s, want fingerprint 3", byTime[0].FingerprintHex)
	}
	byCalls := st.Snapshots("calls", 2)
	if len(byCalls) != 2 {
		t.Fatalf("limit 2 returned %d", len(byCalls))
	}
	if byCalls[0].Calls < byCalls[1].Calls {
		t.Errorf("calls not descending: %d then %d", byCalls[0].Calls, byCalls[1].Calls)
	}
	// Unknown sort keys fall back to the default ordering rather than
	// erroring (HTTP validates before calling).
	if got := st.Snapshots("bogus", 0); len(got) != 3 {
		t.Errorf("unknown key returned %d snapshots, want 3", len(got))
	}
}

func TestStatementSnapshotMerge(t *testing.T) {
	st1 := NewStatementStore(8)
	st2 := NewStatementStore(8)
	st1.Record(obsFor(1, 1000))
	o := obsFor(1, 5000)
	o.MemBytes = 777
	st2.Record(o)
	a := st1.Snapshots("", 0)[0]
	b := st2.Snapshots("", 0)[0]
	a.Merge(&b)
	if a.Calls != 2 || a.TotalNs != 6000 || a.MeanNs != 3000 {
		t.Errorf("merged calls/total/mean = %d/%d/%d, want 2/6000/3000", a.Calls, a.TotalNs, a.MeanNs)
	}
	if a.MaxNs != 5000 || a.MemHighWater != 777 {
		t.Errorf("merged max/mem = %d/%d, want 5000/777", a.MaxNs, a.MemHighWater)
	}
	if a.Hist == nil || a.Hist.Count != 2 {
		t.Errorf("merged histogram count = %v, want 2", a.Hist)
	}
}

func TestStatementSnapshotJSON(t *testing.T) {
	st := NewStatementStore(8)
	st.Record(obsFor(1, 1000))
	b, err := json.Marshal(st.Snapshots("", 0)[0])
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]interface{}
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"fingerprint", "query", "calls", "total_ns", "mean_ns", "p95_ns", "est_cost", "cost_ratio", "last_order"} {
		if _, ok := m[k]; !ok {
			t.Errorf("JSON missing key %q: %s", k, b)
		}
	}
	if _, leaked := m["Hist"]; leaked {
		t.Error("histogram leaked into JSON")
	}
}

// TestStatementStoreConcurrent hammers Record/Snapshots/Reset from many
// goroutines; run with -race (make telemetry-race / make race).
func TestStatementStoreConcurrent(t *testing.T) {
	st := NewStatementStore(16)
	const workers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	time.AfterFunc(100*time.Millisecond, func() { close(stop) })
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				fp := uint64(1 + (i+w)%32) // twice the cap: constant eviction
				o := obsFor(fp, int64(1000+i))
				if i%7 == 0 {
					o.Order = []string{"b", "a"} // drive plan-drift updates
				}
				st.Record(o)
				if i%13 == 0 {
					for _, s := range st.Snapshots("calls", 4) {
						_ = s.CostRatio
					}
				}
				if i%101 == 0 {
					_ = st.Len()
					_ = st.Counters()
				}
			}
		}(w)
	}
	wg.Wait()
	if st.Len() > 16 {
		t.Errorf("len = %d exceeds cap 16", st.Len())
	}
}
