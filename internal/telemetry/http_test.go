package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func testCollector() *Collector {
	c := NewCollector()
	c.AddCounterSource(func() map[string]int64 {
		return map[string]int64{"queries": 3, "rows_out": 12}
	})
	c.ObservePhase("total", 2*time.Millisecond)
	c.ObservePhase("execute", time.Millisecond)
	c.ObserveClass("generic-wcoj", 2*time.Millisecond)
	c.ObserveClass("spmv-gather", 300*time.Microsecond)
	c.Statements.Record(StatementObservation{
		Fingerprint: 0xabc, Text: "select count(*) as c from t",
		DurNs: 1_000_000, Rows: 1, Order: []string{"a"}, EstCost: 4, ActualCost: 8,
	})
	return c
}

func TestMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(testCollector()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"levelheaded_queries 3",
		"levelheaded_rows_out 12",
		"levelheaded_inflight_queries 0",
		`levelheaded_query_latency_seconds_bucket{class="generic-wcoj"`,
		`levelheaded_query_latency_seconds_bucket{class="spmv-gather"`,
		`levelheaded_query_latency_seconds_count{class="generic-wcoj"} 1`,
		`levelheaded_phase_latency_seconds_bucket{phase="execute"`,
		`le="+Inf"`,
		"# HELP levelheaded_queries Queries executed successfully.",
		"# HELP levelheaded_query_latency_seconds ",
		"# HELP levelheaded_statement_calls_total ",
		`levelheaded_statement_calls_total{fingerprint="0000000000000abc"} 1`,
		`levelheaded_statement_cost_ratio{fingerprint="0000000000000abc"} 2`,
		"levelheaded_statements_tracked 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	// The # HELP satellite: every # TYPE family is preceded by a # HELP
	// for the same metric name.
	lines := strings.Split(text, "\n")
	for i, line := range lines {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		name := strings.Fields(line)[2]
		if i == 0 || !strings.HasPrefix(lines[i-1], "# HELP "+name+" ") {
			t.Fatalf("# TYPE %s not preceded by its # HELP line (prev: %q)", name, lines[max(0, i-1)])
		}
	}
	checkPrometheusParsable(t, text)
}

func TestStatementsEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(testCollector()))
	defer srv.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	code, body := get("/debug/statements")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var snaps []StatementSnapshot
	if err := json.Unmarshal([]byte(body), &snaps); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, body)
	}
	if len(snaps) != 1 || snaps[0].FingerprintHex != "0000000000000abc" || snaps[0].Calls != 1 {
		t.Fatalf("snaps = %+v", snaps)
	}
	if code, _ := get("/debug/statements?by=calls&limit=5"); code != 200 {
		t.Fatalf("by=calls status %d", code)
	}
	if code, _ := get("/debug/statements?by=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad sort key status %d, want 400", code)
	}
	if code, _ := get("/debug/statements?limit=-1"); code != http.StatusBadRequest {
		t.Fatalf("bad limit status %d, want 400", code)
	}
	// An empty store serves [] rather than null.
	empty := httptest.NewServer(Handler(NewCollector()))
	defer empty.Close()
	resp, err := http.Get(empty.URL + "/debug/statements")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.TrimSpace(string(b)) != "[]" {
		t.Fatalf("empty store body = %q, want []", b)
	}
}

// checkPrometheusParsable validates the exposition-format invariants a
// scraper relies on: every non-comment line is "name{labels} value",
// and histogram bucket counts are cumulative and end with +Inf == count.
func checkPrometheusParsable(t *testing.T, text string) {
	t.Helper()
	type series struct {
		buckets []float64 // cumulative counts in order
		count   float64
		hasInf  bool
	}
	hists := map[string]*series{}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparsable line %q", line)
		}
		name, valStr := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(valStr, 64); err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unterminated labels in %q", line)
			}
			base, labels := name[:i], name[i+1:len(name)-1]
			v, _ := strconv.ParseFloat(valStr, 64)
			switch {
			case strings.HasSuffix(base, "_bucket"):
				key := base + "|" + stripLabel(labels, "le")
				h := hists[key]
				if h == nil {
					h = &series{}
					hists[key] = h
				}
				h.buckets = append(h.buckets, v)
				if strings.Contains(labels, `le="+Inf"`) {
					h.hasInf = true
				}
			case strings.HasSuffix(base, "_count"):
				key := strings.TrimSuffix(base, "_count") + "_bucket|" + labels
				h := hists[key]
				if h == nil {
					h = &series{}
					hists[key] = h
				}
				h.count = v
			}
		}
	}
	if len(hists) == 0 {
		t.Fatal("no histogram series found")
	}
	for key, h := range hists {
		if !h.hasInf {
			t.Fatalf("%s: no +Inf bucket", key)
		}
		for i := 1; i < len(h.buckets); i++ {
			if h.buckets[i] < h.buckets[i-1] {
				t.Fatalf("%s: buckets not cumulative: %v", key, h.buckets)
			}
		}
		if n := len(h.buckets); n > 0 && h.buckets[n-1] != h.count {
			t.Fatalf("%s: +Inf bucket %g != count %g", key, h.buckets[n-1], h.count)
		}
	}
}

// stripLabel removes one label pair so bucket series of the same
// histogram share a map key regardless of their le value.
func stripLabel(labels, name string) string {
	var kept []string
	for _, part := range strings.Split(labels, ",") {
		if !strings.HasPrefix(part, name+"=") {
			kept = append(kept, part)
		}
	}
	return strings.Join(kept, ",")
}

func TestDebugQueriesAndTrace(t *testing.T) {
	c := testCollector()
	tr := NewTrace("SELECT count(*) FROM edges")
	sp := tr.Begin(tr.Root(), SpanPhase, "execute")
	a := c.Registry.Register(tr.SQL(), nil, tr)
	a.SetPhase("execute")

	srv := httptest.NewServer(Handler(c))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	var infos []QueryInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].Phase != "execute" || infos[0].Span != "execute" {
		t.Fatalf("queries = %+v", infos)
	}

	tr.End(sp)
	tr.Finish()
	c.Registry.Finish(a)

	resp, err = http.Get(fmt.Sprintf("%s/debug/trace/%d", srv.URL, a.ID()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var events []map[string]interface{}
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatalf("trace not chrome JSON: %v\n%s", err, body)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}

	resp, err = http.Get(fmt.Sprintf("%s/debug/trace/%d/tree", srv.URL, a.ID()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "execute") {
		t.Fatalf("tree dump = %s", body)
	}

	resp, err = http.Get(srv.URL + "/debug/trace/99999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace status = %d", resp.StatusCode)
	}
}

func TestCancelEndpoint(t *testing.T) {
	c := NewCollector()
	cancelled := false
	a := c.Registry.Register("q", func() { cancelled = true }, nil)
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()

	resp, err := http.Get(fmt.Sprintf("%s/debug/queries/cancel?id=%d", srv.URL, a.ID()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET cancel status = %d", resp.StatusCode)
	}
	resp, err = http.Post(fmt.Sprintf("%s/debug/queries/cancel?id=%d", srv.URL, a.ID()), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || !cancelled {
		t.Fatalf("cancel: status=%d cancelled=%v", resp.StatusCode, cancelled)
	}
}

func TestServeRandomPort(t *testing.T) {
	s, err := Serve("127.0.0.1:0", testCollector())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
