package colstore

import (
	"reflect"
	"testing"

	"repro/internal/storage"
)

func TestSelOperators(t *testing.T) {
	ints := []int64{5, 10, 15, 20}
	if got := selInt(ints, func(v int64) bool { return v >= 10 && v < 20 }); !reflect.DeepEqual(got, []int32{1, 2}) {
		t.Fatalf("selInt = %v", got)
	}
	strs := []string{"a", "b", "a"}
	if got := selStr(strs, func(s string) bool { return s == "a" }); !reflect.DeepEqual(got, []int32{0, 2}) {
		t.Fatalf("selStr = %v", got)
	}
	fs := []float64{0.5, 1.5, 2.5}
	if got := selFloat(fs, func(v float64) bool { return v > 1 }); !reflect.DeepEqual(got, []int32{1, 2}) {
		t.Fatalf("selFloat = %v", got)
	}
}

func TestAndSel(t *testing.T) {
	a := []int32{0, 2, 4, 6}
	b := []int32{1, 2, 3, 6, 9}
	if got := andSel(a, b); !reflect.DeepEqual(got, []int32{2, 6}) {
		t.Fatalf("andSel = %v", got)
	}
	if got := andSel(a, nil); len(got) != 0 {
		t.Fatalf("andSel with empty = %v", got)
	}
}

func TestGathers(t *testing.T) {
	sel := []int32{2, 0}
	if got := gatherI([]int64{10, 20, 30}, sel); !reflect.DeepEqual(got, []int64{30, 10}) {
		t.Fatalf("gatherI = %v", got)
	}
	if got := gatherF([]float64{1, 2, 3}, sel); !reflect.DeepEqual(got, []float64{3, 1}) {
		t.Fatalf("gatherF = %v", got)
	}
	if got := gatherS([]string{"x", "y", "z"}, sel); !reflect.DeepEqual(got, []string{"z", "x"}) {
		t.Fatalf("gatherS = %v", got)
	}
}

func TestHashJoinAllMatches(t *testing.T) {
	left := []int64{1, 2, 2, 3}
	right := []int64{2, 2, 4, 1}
	lp, rp := hashJoin(left, right)
	// Expect: left[0]=1 matches right[3]; left[1]=2 and left[2]=2 each
	// match right[0] and right[1] → 5 pairs total.
	if len(lp) != 5 || len(rp) != 5 {
		t.Fatalf("pairs = %d", len(lp))
	}
	count := map[[2]int32]int{}
	for i := range lp {
		count[[2]int32{lp[i], rp[i]}]++
	}
	for _, want := range [][2]int32{{0, 3}, {1, 0}, {1, 1}, {2, 0}, {2, 1}} {
		if count[want] != 1 {
			t.Fatalf("missing pair %v in %v", want, count)
		}
	}
}

func TestHashJoinBoundedAborts(t *testing.T) {
	left := []int64{1, 1, 1}
	right := []int64{1, 1, 1}
	lp, rp := hashJoinBounded(left, right, 4)
	if lp != nil || rp != nil {
		t.Fatal("9-pair join should exceed budget 4")
	}
	lp, _ = hashJoinBounded(left, right, 100)
	if len(lp) != 9 {
		t.Fatalf("unbounded join pairs = %d", len(lp))
	}
}

func TestUnknownQuery(t *testing.T) {
	e := New(storage.NewCatalog())
	if _, err := e.RunTPCH("q99"); err == nil {
		t.Error("unknown query should error")
	}
}

func TestSpMVMissingTable(t *testing.T) {
	e := New(storage.NewCatalog())
	if _, err := e.SpMV("nope", "nada"); err == nil {
		t.Error("missing tables should error")
	}
	if _, _, err := e.SpMM("nope", "nada", 0); err == nil {
		t.Error("missing tables should error")
	}
	if _, err := e.ConvertToCSR("nope", 1, 1); err == nil {
		t.Error("missing table should error")
	}
}
