// Package colstore is the reproduction's stand-in for MonetDB (paper
// §VI-A): a column-at-a-time engine in which every operator fully
// materializes its result — selection vectors, join index arrays and
// projected columns — before the next operator runs (BAT-algebra
// style). The logical plans match package pairwise; the execution
// discipline, and therefore the intermediate-materialization cost, is
// what differs.
//
// It also provides the column-store → CSR conversion that Table IV
// measures: the data movement a column store must pay before calling a
// sparse BLAS kernel.
package colstore

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/blas"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// Rows mirrors pairwise.Rows: group-key → aggregate values.
type Rows struct {
	Names []string
	Data  map[string][]float64
}

// NumRows reports the number of result groups.
func (r *Rows) NumRows() int { return len(r.Data) }

// Engine runs benchmark queries column-at-a-time.
type Engine struct {
	cat *storage.Catalog
}

// New wraps a catalog.
func New(cat *storage.Catalog) *Engine { return &Engine{cat: cat} }

func day(s string) int64 {
	d, err := sqlparse.ParseDate(s)
	if err != nil {
		panic(err)
	}
	return int64(d)
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// --- BAT-style materializing operators --------------------------------

// selInt materializes the row ids where pred holds.
func selInt(col []int64, pred func(int64) bool) []int32 {
	out := make([]int32, 0, len(col)/4+1)
	for i, v := range col {
		if pred(v) {
			out = append(out, int32(i))
		}
	}
	return out
}

// selStr materializes the row ids where pred holds on a string column.
func selStr(col []string, pred func(string) bool) []int32 {
	out := make([]int32, 0, len(col)/4+1)
	for i, v := range col {
		if pred(v) {
			out = append(out, int32(i))
		}
	}
	return out
}

// selFloat materializes the row ids where pred holds on a float column.
func selFloat(col []float64, pred func(float64) bool) []int32 {
	out := make([]int32, 0, len(col)/4+1)
	for i, v := range col {
		if pred(v) {
			out = append(out, int32(i))
		}
	}
	return out
}

// andSel intersects two ascending selection vectors.
func andSel(a, b []int32) []int32 {
	out := make([]int32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// gatherI materializes col[sel].
func gatherI(col []int64, sel []int32) []int64 {
	out := make([]int64, len(sel))
	for i, r := range sel {
		out[i] = col[r]
	}
	return out
}

// gatherF materializes col[sel].
func gatherF(col []float64, sel []int32) []float64 {
	out := make([]float64, len(sel))
	for i, r := range sel {
		out[i] = col[r]
	}
	return out
}

// gatherS materializes col[sel].
func gatherS(col []string, sel []int32) []string {
	out := make([]string, len(sel))
	for i, r := range sel {
		out[i] = col[r]
	}
	return out
}

// hashJoin materializes the matching position pairs of left ⋈ right on
// int64 keys (both sides already materialized columns).
func hashJoin(left, right []int64) (lpos, rpos []int32) {
	build := make(map[int64][]int32, len(right))
	for i, k := range right {
		build[k] = append(build[k], int32(i))
	}
	lpos = make([]int32, 0, len(left))
	rpos = make([]int32, 0, len(left))
	for i, k := range left {
		for _, r := range build[k] {
			lpos = append(lpos, int32(i))
			rpos = append(rpos, r)
		}
	}
	return lpos, rpos
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- queries -----------------------------------------------------------

// RunTPCH executes one of the paper's TPC-H queries.
func (e *Engine) RunTPCH(name string) (*Rows, error) {
	switch name {
	case "q1":
		return e.q1(), nil
	case "q3":
		return e.q3(), nil
	case "q5":
		return e.q5(), nil
	case "q6":
		return e.q6(), nil
	case "q8":
		return e.q8(), nil
	case "q9":
		return e.q9(), nil
	case "q10":
		return e.q10(), nil
	default:
		return nil, fmt.Errorf("colstore: unknown query %q", name)
	}
}

func (e *Engine) q1() *Rows {
	li := e.cat.Table("lineitem")
	cutoff := day("1998-12-01") - 90
	sel := selInt(li.Col("l_shipdate").Ints, func(d int64) bool { return d <= cutoff })
	flag := gatherS(li.Col("l_returnflag").Strs, sel)
	stat := gatherS(li.Col("l_linestatus").Strs, sel)
	qty := gatherF(li.Col("l_quantity").Floats, sel)
	price := gatherF(li.Col("l_extendedprice").Floats, sel)
	disc := gatherF(li.Col("l_discount").Floats, sel)
	tax := gatherF(li.Col("l_tax").Floats, sel)
	// Materialized derived columns, MonetDB-style.
	discP := make([]float64, len(sel))
	charge := make([]float64, len(sel))
	for i := range sel {
		discP[i] = price[i] * (1 - disc[i])
		charge[i] = discP[i] * (1 + tax[i])
	}
	type acc struct{ qty, base, discP, charge, disc, cnt float64 }
	groups := map[string]*acc{}
	for i := range sel {
		k := flag[i] + "|" + stat[i]
		a := groups[k]
		if a == nil {
			a = &acc{}
			groups[k] = a
		}
		a.qty += qty[i]
		a.base += price[i]
		a.discP += discP[i]
		a.charge += charge[i]
		a.disc += disc[i]
		a.cnt++
	}
	out := &Rows{Names: []string{"l_returnflag", "l_linestatus", "sum_qty", "sum_base_price", "sum_disc_price", "sum_charge", "avg_qty", "avg_price", "avg_disc", "count_order"}, Data: map[string][]float64{}}
	for k, a := range groups {
		out.Data[k] = []float64{a.qty, a.base, a.discP, a.charge, a.qty / a.cnt, a.base / a.cnt, a.disc / a.cnt, a.cnt}
	}
	return out
}

func (e *Engine) q3() *Rows {
	cust := e.cat.Table("customer")
	orders := e.cat.Table("orders")
	li := e.cat.Table("lineitem")
	cut := day("1995-03-15")

	cSel := selStr(cust.Col("c_mktsegment").Strs, func(s string) bool { return s == "BUILDING" })
	cKeys := gatherI(cust.Col("c_custkey").Ints, cSel)

	oSel := selInt(orders.Col("o_orderdate").Ints, func(d int64) bool { return d < cut })
	oCust := gatherI(orders.Col("o_custkey").Ints, oSel)
	oKeys := gatherI(orders.Col("o_orderkey").Ints, oSel)
	oDates := gatherI(orders.Col("o_orderdate").Ints, oSel)
	oPrio := gatherI(orders.Col("o_shippriority").Ints, oSel)

	// orders ⋈ customer.
	oPos, _ := hashJoin(oCust, cKeys)
	joKeys := make([]int64, len(oPos))
	joDates := make([]int64, len(oPos))
	joPrio := make([]int64, len(oPos))
	for i, p := range oPos {
		joKeys[i] = oKeys[p]
		joDates[i] = oDates[p]
		joPrio[i] = oPrio[p]
	}

	lSel := selInt(li.Col("l_shipdate").Ints, func(d int64) bool { return d > cut })
	lKeys := gatherI(li.Col("l_orderkey").Ints, lSel)
	lPrice := gatherF(li.Col("l_extendedprice").Floats, lSel)
	lDisc := gatherF(li.Col("l_discount").Floats, lSel)

	lPos, joPos := hashJoin(lKeys, joKeys)
	rev := make([]float64, len(lPos))
	for i := range lPos {
		rev[i] = lPrice[lPos[i]] * (1 - lDisc[lPos[i]])
	}
	type acc struct {
		rev        float64
		date, prio int64
	}
	groups := map[int64]*acc{}
	for i := range lPos {
		ok := lKeys[lPos[i]]
		a := groups[ok]
		if a == nil {
			a = &acc{date: joDates[joPos[i]], prio: joPrio[joPos[i]]}
			groups[ok] = a
		}
		a.rev += rev[i]
	}
	out := &Rows{Names: []string{"l_orderkey", "revenue", "o_orderdate", "o_shippriority"}, Data: map[string][]float64{}}
	for ok, a := range groups {
		key := strconv.FormatInt(ok, 10) + "|" + sqlparse.DaysToDate(int32(a.date)) + "|" + strconv.FormatInt(a.prio, 10)
		out.Data[key] = []float64{a.rev}
	}
	return out
}

func (e *Engine) q5() *Rows {
	region := e.cat.Table("region")
	nation := e.cat.Table("nation")
	cust := e.cat.Table("customer")
	orders := e.cat.Table("orders")
	li := e.cat.Table("lineitem")
	supp := e.cat.Table("supplier")
	lo, hi := day("1994-01-01"), day("1995-01-01")

	rSel := selStr(region.Col("r_name").Strs, func(s string) bool { return s == "ASIA" })
	rKeys := gatherI(region.Col("r_regionkey").Ints, rSel)

	nPos, _ := hashJoin(nation.Col("n_regionkey").Ints, rKeys)
	nKeys := make([]int64, len(nPos))
	nNames := make([]string, len(nPos))
	for i, p := range nPos {
		nKeys[i] = nation.Col("n_nationkey").Ints[p]
		nNames[i] = nation.Col("n_name").Strs[p]
	}

	// customer ⋈ asian nations.
	cPos, cnPos := hashJoin(cust.Col("c_nationkey").Ints, nKeys)
	cKeys := make([]int64, len(cPos))
	cNation := make([]int64, len(cPos))
	for i := range cPos {
		cKeys[i] = cust.Col("c_custkey").Ints[cPos[i]]
		cNation[i] = nKeys[cnPos[i]]
	}

	// supplier ⋈ asian nations.
	sPos, snPos := hashJoin(supp.Col("s_nationkey").Ints, nKeys)
	sKeys := make([]int64, len(sPos))
	sNation := make([]int64, len(sPos))
	sName := make([]string, len(sPos))
	for i := range sPos {
		sKeys[i] = supp.Col("s_suppkey").Ints[sPos[i]]
		sNation[i] = nKeys[snPos[i]]
		sName[i] = nNames[snPos[i]]
	}

	// orders filtered ⋈ customer.
	oSel := selInt(orders.Col("o_orderdate").Ints, func(d int64) bool { return d >= lo && d < hi })
	oKeys := gatherI(orders.Col("o_orderkey").Ints, oSel)
	oCust := gatherI(orders.Col("o_custkey").Ints, oSel)
	oPos, ocPos := hashJoin(oCust, cKeys)
	joKeys := make([]int64, len(oPos))
	joNation := make([]int64, len(oPos))
	for i := range oPos {
		joKeys[i] = oKeys[oPos[i]]
		joNation[i] = cNation[ocPos[i]]
	}

	// lineitem ⋈ orders.
	lPos, loPos := hashJoin(li.Col("l_orderkey").Ints, joKeys)
	lSupp := make([]int64, len(lPos))
	lNation := make([]int64, len(lPos))
	lRev := make([]float64, len(lPos))
	for i := range lPos {
		lSupp[i] = li.Col("l_suppkey").Ints[lPos[i]]
		lNation[i] = joNation[loPos[i]]
		lRev[i] = li.Col("l_extendedprice").Floats[lPos[i]] * (1 - li.Col("l_discount").Floats[lPos[i]])
	}

	// ⋈ supplier (on suppkey AND matching nation).
	jPos, jsPos := hashJoin(lSupp, sKeys)
	groups := map[string]float64{}
	for i := range jPos {
		if lNation[jPos[i]] != sNation[jsPos[i]] {
			continue
		}
		groups[sName[jsPos[i]]] += lRev[jPos[i]]
	}
	out := &Rows{Names: []string{"n_name", "revenue"}, Data: map[string][]float64{}}
	for k, v := range groups {
		out.Data[k] = []float64{v}
	}
	return out
}

// q6Lo/q6Hi reproduce the query's literal arithmetic (0.06 ± 0.01) in
// runtime float64 (IEEE) semantics, matching the SQL expression
// evaluator exactly — Go constant arithmetic is exact and would differ.
var (
	q6Mid float64 = 0.06
	q6Eps float64 = 0.01
	q6Lo          = q6Mid - q6Eps
	q6Hi          = q6Mid + q6Eps
)

func (e *Engine) q6() *Rows {
	li := e.cat.Table("lineitem")
	lo, hi := day("1994-01-01"), day("1995-01-01")
	s1 := selInt(li.Col("l_shipdate").Ints, func(d int64) bool { return d >= lo && d < hi })
	s2 := selFloat(li.Col("l_discount").Floats, func(d float64) bool { return d >= q6Lo && d <= q6Hi })
	s3 := selFloat(li.Col("l_quantity").Floats, func(q float64) bool { return q < 24 })
	sel := andSel(andSel(s1, s2), s3)
	price := gatherF(li.Col("l_extendedprice").Floats, sel)
	disc := gatherF(li.Col("l_discount").Floats, sel)
	rev := 0.0
	for i := range sel {
		rev += price[i] * disc[i]
	}
	return &Rows{Names: []string{"revenue"}, Data: map[string][]float64{"": {rev}}}
}

func (e *Engine) q8() *Rows {
	part := e.cat.Table("part")
	supp := e.cat.Table("supplier")
	li := e.cat.Table("lineitem")
	orders := e.cat.Table("orders")
	cust := e.cat.Table("customer")
	nation := e.cat.Table("nation")
	region := e.cat.Table("region")
	lo, hi := day("1995-01-01"), day("1996-12-31")

	pSel := selStr(part.Col("p_type").Strs, func(s string) bool { return s == "ECONOMY ANODIZED STEEL" })
	pKeys := gatherI(part.Col("p_partkey").Ints, pSel)

	rSel := selStr(region.Col("r_name").Strs, func(s string) bool { return s == "AMERICA" })
	rKeys := gatherI(region.Col("r_regionkey").Ints, rSel)
	n1Pos, _ := hashJoin(nation.Col("n_regionkey").Ints, rKeys)
	n1Keys := gatherI(nation.Col("n_nationkey").Ints, n1Pos)

	cPos, _ := hashJoin(cust.Col("c_nationkey").Ints, n1Keys)
	cKeys := make([]int64, len(cPos))
	for i, p := range cPos {
		cKeys[i] = cust.Col("c_custkey").Ints[p]
	}

	oSel := selInt(orders.Col("o_orderdate").Ints, func(d int64) bool { return d >= lo && d <= hi })
	oKeys := gatherI(orders.Col("o_orderkey").Ints, oSel)
	oCust := gatherI(orders.Col("o_custkey").Ints, oSel)
	oDates := gatherI(orders.Col("o_orderdate").Ints, oSel)
	oPos, _ := hashJoin(oCust, cKeys)
	joKeys := make([]int64, len(oPos))
	joYear := make([]int64, len(oPos))
	for i, p := range oPos {
		joKeys[i] = oKeys[p]
		joYear[i] = int64(sqlparse.DateYear(int32(oDates[p])))
	}

	// lineitem ⋈ econ parts, then ⋈ orders, then supplier nation.
	lPos, _ := hashJoin(li.Col("l_partkey").Ints, pKeys)
	lOk := make([]int64, len(lPos))
	lSk := make([]int64, len(lPos))
	lRev := make([]float64, len(lPos))
	for i, p := range lPos {
		lOk[i] = li.Col("l_orderkey").Ints[p]
		lSk[i] = li.Col("l_suppkey").Ints[p]
		lRev[i] = li.Col("l_extendedprice").Floats[p] * (1 - li.Col("l_discount").Floats[p])
	}
	jPos, joPos := hashJoin(lOk, joKeys)
	jSk := make([]int64, len(jPos))
	jYear := make([]int64, len(jPos))
	jRev := make([]float64, len(jPos))
	for i := range jPos {
		jSk[i] = lSk[jPos[i]]
		jYear[i] = joYear[joPos[i]]
		jRev[i] = lRev[jPos[i]]
	}
	// supplier nation names.
	nationName := gatherS(nation.Col("n_name").Strs, selStr(nation.Col("n_name").Strs, func(string) bool { return true }))
	nationKey := nation.Col("n_nationkey").Ints
	nk2name := map[int64]string{}
	for i, k := range nationKey {
		nk2name[k] = nationName[i]
	}
	sPosAll, _ := hashJoin(jSk, supp.Col("s_suppkey").Ints)
	_ = sPosAll
	suppNation := map[int64]int64{}
	for i := 0; i < supp.NumRows; i++ {
		suppNation[supp.Col("s_suppkey").Ints[i]] = supp.Col("s_nationkey").Ints[i]
	}
	type acc struct{ num, den float64 }
	groups := map[int64]*acc{}
	for i := range jPos {
		nk := suppNation[jSk[i]]
		a := groups[jYear[i]]
		if a == nil {
			a = &acc{}
			groups[jYear[i]] = a
		}
		if nk2name[nk] == "BRAZIL" {
			a.num += jRev[i]
		}
		a.den += jRev[i]
	}
	out := &Rows{Names: []string{"o_year", "mkt_share"}, Data: map[string][]float64{}}
	for y, a := range groups {
		out.Data[f(float64(y))] = []float64{a.num / a.den}
	}
	return out
}

func (e *Engine) q9() *Rows {
	part := e.cat.Table("part")
	supp := e.cat.Table("supplier")
	li := e.cat.Table("lineitem")
	ps := e.cat.Table("partsupp")
	orders := e.cat.Table("orders")
	nation := e.cat.Table("nation")

	pSel := selStr(part.Col("p_name").Strs, func(s string) bool { return strings.Contains(s, "green") })
	pKeys := gatherI(part.Col("p_partkey").Ints, pSel)

	lPos, _ := hashJoin(li.Col("l_partkey").Ints, pKeys)
	lPk := make([]int64, len(lPos))
	lSk := make([]int64, len(lPos))
	lOk := make([]int64, len(lPos))
	lAmt1 := make([]float64, len(lPos))
	lQty := make([]float64, len(lPos))
	for i, p := range lPos {
		lPk[i] = li.Col("l_partkey").Ints[p]
		lSk[i] = li.Col("l_suppkey").Ints[p]
		lOk[i] = li.Col("l_orderkey").Ints[p]
		lAmt1[i] = li.Col("l_extendedprice").Floats[p] * (1 - li.Col("l_discount").Floats[p])
		lQty[i] = li.Col("l_quantity").Floats[p]
	}
	// Composite-key join with partsupp (materialized composite keys).
	lComp := make([]int64, len(lPos))
	for i := range lPos {
		lComp[i] = lPk[i]<<20 | lSk[i]
	}
	psComp := make([]int64, ps.NumRows)
	for i := 0; i < ps.NumRows; i++ {
		psComp[i] = ps.Col("ps_partkey").Ints[i]<<20 | ps.Col("ps_suppkey").Ints[i]
	}
	jPos, psPos := hashJoin(lComp, psComp)
	amount := make([]float64, len(jPos))
	jSk := make([]int64, len(jPos))
	jOk := make([]int64, len(jPos))
	for i := range jPos {
		amount[i] = lAmt1[jPos[i]] - ps.Col("ps_supplycost").Floats[psPos[i]]*lQty[jPos[i]]
		jSk[i] = lSk[jPos[i]]
		jOk[i] = lOk[jPos[i]]
	}
	suppNation := map[int64]int64{}
	for i := 0; i < supp.NumRows; i++ {
		suppNation[supp.Col("s_suppkey").Ints[i]] = supp.Col("s_nationkey").Ints[i]
	}
	nk2name := map[int64]string{}
	for i := 0; i < nation.NumRows; i++ {
		nk2name[nation.Col("n_nationkey").Ints[i]] = nation.Col("n_name").Strs[i]
	}
	orderYear := map[int64]int64{}
	for i := 0; i < orders.NumRows; i++ {
		orderYear[orders.Col("o_orderkey").Ints[i]] = int64(sqlparse.DateYear(int32(orders.Col("o_orderdate").Ints[i])))
	}
	groups := map[string]float64{}
	for i := range jPos {
		name := nk2name[suppNation[jSk[i]]]
		year := orderYear[jOk[i]]
		groups[name+"|"+f(float64(year))] += amount[i]
	}
	out := &Rows{Names: []string{"n_name", "o_year", "sum_profit"}, Data: map[string][]float64{}}
	for k, v := range groups {
		out.Data[k] = []float64{v}
	}
	return out
}

func (e *Engine) q10() *Rows {
	cust := e.cat.Table("customer")
	orders := e.cat.Table("orders")
	li := e.cat.Table("lineitem")
	nation := e.cat.Table("nation")
	lo, hi := day("1993-10-01"), day("1994-01-01")

	oSel := selInt(orders.Col("o_orderdate").Ints, func(d int64) bool { return d >= lo && d < hi })
	oKeys := gatherI(orders.Col("o_orderkey").Ints, oSel)
	oCust := gatherI(orders.Col("o_custkey").Ints, oSel)

	lSel := selStr(li.Col("l_returnflag").Strs, func(s string) bool { return s == "R" })
	lKeys := gatherI(li.Col("l_orderkey").Ints, lSel)
	lRev := make([]float64, len(lSel))
	for i, p := range lSel {
		lRev[i] = li.Col("l_extendedprice").Floats[p] * (1 - li.Col("l_discount").Floats[p])
	}
	lPos, oPos := hashJoin(lKeys, oKeys)
	groups := map[int64]float64{}
	for i := range lPos {
		groups[oCust[oPos[i]]] += lRev[lPos[i]]
	}
	nk2name := map[int64]string{}
	for i := 0; i < nation.NumRows; i++ {
		nk2name[nation.Col("n_nationkey").Ints[i]] = nation.Col("n_name").Strs[i]
	}
	out := &Rows{Names: []string{"c_custkey", "revenue"}, Data: map[string][]float64{}}
	for i := 0; i < cust.NumRows; i++ {
		ck := cust.Col("c_custkey").Ints[i]
		rev, hit := groups[ck]
		if !hit {
			continue
		}
		key := strconv.FormatInt(ck, 10) + "|" + cust.Col("c_name").Strs[i] + "|" +
			f(cust.Col("c_acctbal").Floats[i]) + "|" + cust.Col("c_phone").Strs[i] + "|" +
			nk2name[cust.Col("c_nationkey").Ints[i]] + "|" + cust.Col("c_address").Strs[i] + "|" +
			cust.Col("c_comment").Strs[i]
		out.Data[key] = []float64{rev}
	}
	return out
}

// --- linear algebra ----------------------------------------------------

// SpMV joins the COO matrix with the vector column-at-a-time: the join
// index arrays and the multiplied column are fully materialized before
// the aggregation pass.
func (e *Engine) SpMV(matrix, vector string) (map[int64]float64, error) {
	m := e.cat.Table(matrix)
	v := e.cat.Table(vector)
	if m == nil || v == nil {
		return nil, fmt.Errorf("colstore: missing table")
	}
	mPos, vPos := hashJoin(m.Col("j").Ints, v.Col("k").Ints)
	prod := make([]float64, len(mPos))
	outI := make([]int64, len(mPos))
	mv := m.Col("v").Floats
	vx := v.Col("x").Floats
	mi := m.Col("i").Ints
	for i := range mPos {
		prod[i] = mv[mPos[i]] * vx[vPos[i]]
		outI[i] = mi[mPos[i]]
	}
	y := map[int64]float64{}
	for i := range outI {
		y[outI[i]] += prod[i]
	}
	return y, nil
}

// SpMM materializes the full join (i, j, product) columns before hash
// aggregation; maxPairs bounds the intermediate (the "oom" stand-in).
func (e *Engine) SpMM(m1, m2 string, maxPairs int) (nnz int, checksum float64, err error) {
	a := e.cat.Table(m1)
	b := e.cat.Table(m2)
	if a == nil || b == nil {
		return 0, 0, fmt.Errorf("colstore: missing table")
	}
	aPos, bPos := hashJoinBounded(a.Col("j").Ints, b.Col("i").Ints, maxPairs)
	if aPos == nil {
		return 0, 0, fmt.Errorf("colstore: join exceeded %d intermediate pairs (oom)", maxPairs)
	}
	outI := make([]int64, len(aPos))
	outJ := make([]int64, len(aPos))
	prod := make([]float64, len(aPos))
	ai := a.Col("i").Ints
	av := a.Col("v").Floats
	bj := b.Col("j").Ints
	bv := b.Col("v").Floats
	for i := range aPos {
		outI[i] = ai[aPos[i]]
		outJ[i] = bj[bPos[i]]
		prod[i] = av[aPos[i]] * bv[bPos[i]]
	}
	agg := map[[2]int64]float64{}
	for i := range outI {
		agg[[2]int64{outI[i], outJ[i]}] += prod[i]
	}
	for k, v := range agg {
		checksum += v * float64(k[0]+2*k[1]+1)
	}
	return len(agg), checksum, nil
}

// hashJoinBounded is hashJoin with an intermediate-size budget; it
// returns nil slices when the budget is exceeded.
func hashJoinBounded(left, right []int64, maxPairs int) (lpos, rpos []int32) {
	build := make(map[int64][]int32, len(right))
	for i, k := range right {
		build[k] = append(build[k], int32(i))
	}
	lpos = make([]int32, 0, len(left))
	rpos = make([]int32, 0, len(left))
	for i, k := range left {
		ms := build[k]
		if maxPairs > 0 && len(lpos)+len(ms) > maxPairs {
			return nil, nil
		}
		for _, r := range ms {
			lpos = append(lpos, int32(i))
			rpos = append(rpos, r)
		}
	}
	return lpos, rpos
}

// ConvertToCSR gathers a COO table's columns and compresses them to CSR
// — the data transformation a column store pays before calling a sparse
// BLAS routine (Table IV's mkl_scsrcoo analogue).
func (e *Engine) ConvertToCSR(matrix string, rows, cols int) (*blas.CSR, error) {
	m := e.cat.Table(matrix)
	if m == nil {
		return nil, fmt.Errorf("colstore: missing table %q", matrix)
	}
	n := m.NumRows
	i32 := make([]int32, n)
	j32 := make([]int32, n)
	vals := make([]float64, n)
	mi := m.Col("i").Ints
	mj := m.Col("j").Ints
	mv := m.Col("v").Floats
	for r := 0; r < n; r++ {
		i32[r] = int32(mi[r])
		j32[r] = int32(mj[r])
		vals[r] = mv[r]
	}
	coo, err := blas.NewCOO(rows, cols, i32, j32, vals)
	if err != nil {
		return nil, err
	}
	return blas.CompressCOO(coo), nil
}
