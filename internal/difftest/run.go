package difftest

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/qerr"
	"repro/internal/refeval"
	"repro/internal/sqlparse"
)

func parseDate(s string) (int32, error) { return sqlparse.ParseDate(s) }

// Verdict classifies one differential run.
type Verdict int

const (
	// Agree: both engines accepted the query and produced equal results.
	Agree Verdict = iota
	// Disagree: results differ, or exactly one side failed.
	Disagree
	// Skip: the query is outside the supported subset (both sides, or
	// the planner, rejected it) — the generator retries.
	Skip
)

// Outcome is the result of running one case through an oracle.
type Outcome struct {
	Verdict Verdict
	Detail  string
}

func disagree(format string, args ...any) Outcome {
	return Outcome{Verdict: Disagree, Detail: fmt.Sprintf(format, args...)}
}

// planReject reports whether err means "query outside the supported
// subset" (skip) rather than an execution failure (finding).
func planReject(err error) bool {
	var pe *qerr.PlanError
	var pse *qerr.ParseError
	return errors.As(err, &pe) || errors.As(err, &pse)
}

// RunRefevalLane executes the case on the engine and on the brute-force
// reference evaluator and compares results.
func RunRefevalLane(c *Case) Outcome {
	eng, err := c.BuildEngine()
	if err != nil {
		return Outcome{Verdict: Skip, Detail: err.Error()}
	}
	engRes, engErr := eng.Query(c.SQL)

	rels, err := c.Relations()
	if err != nil {
		return Outcome{Verdict: Skip, Detail: err.Error()}
	}
	refRes, refErr := refeval.Eval(c.SQL, rels)

	switch {
	case engErr != nil && planReject(engErr):
		// Outside the supported subset; nothing to differentiate.
		return Outcome{Verdict: Skip, Detail: engErr.Error()}
	case engErr != nil && refErr != nil:
		return Outcome{Verdict: Skip, Detail: engErr.Error()}
	case engErr != nil:
		return disagree("engine failed, reference succeeded: %v", engErr)
	case refErr != nil:
		// The reference cannot evaluate a query the engine accepted —
		// treat as a harness gap, not an engine bug.
		return Outcome{Verdict: Skip, Detail: refErr.Error()}
	}
	if err := CompareResults(engRes, refRes); err != nil {
		return disagree("%v", err)
	}
	return Outcome{Verdict: Agree}
}

// runEngine executes sql on a freshly built engine for c's dataset.
func runEngine(c *Case, sql string) (*exec.Result, error) {
	eng, err := c.BuildEngine()
	if err != nil {
		return nil, err
	}
	return eng.Query(sql)
}

// runEngineOn executes sql reusing an already-loaded engine.
func runEngineOn(eng *core.Engine, sql string) (*exec.Result, error) {
	return eng.Query(sql)
}
