package difftest

import (
	"context"
	"os"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/wal"
)

// RunRecoveryLane exercises the durability path end to end on a
// generated query/dataset pair: a durable engine loads a prefix of
// each table pre-freeze, queries (which freezes and checks against
// refeval), compacts (writing a snapshot and truncating WALs), appends
// the remaining rows (WAL-logged deltas), checks the full dataset
// against refeval, then "crashes" — the engine is dropped with no
// drain, sync, or close — and a second engine recovers the directory.
// The recovered engine must report a clean recovery and produce a
// bit-identical result to the pre-crash engine.
func RunRecoveryLane(c *Case) Outcome {
	dir, err := os.MkdirTemp("", "lhrecovery")
	if err != nil {
		return Outcome{Verdict: Skip, Detail: err.Error()}
	}
	defer os.RemoveAll(dir)

	e1 := core.New(core.WithDurability(dir, wal.SyncEvery()))
	tabs := make([]*storage.Table, len(c.Tables))
	rows := make([][][]any, len(c.Tables))
	for ti, td := range c.Tables {
		s := storage.Schema{Name: td.Name}
		for _, cd := range td.Cols {
			def, err := cd.storageDef()
			if err != nil {
				return Outcome{Verdict: Skip, Detail: err.Error()}
			}
			s.Cols = append(s.Cols, def)
		}
		t, err := e1.CreateTable(s)
		if err != nil {
			return Outcome{Verdict: Skip, Detail: err.Error()}
		}
		tabs[ti] = t
		for _, row := range td.Rows {
			if len(row) != len(td.Cols) {
				return Outcome{Verdict: Skip, Detail: "row width mismatch"}
			}
			vals := make([]any, len(row))
			for i, cell := range row {
				v, err := decodeCell(td.Cols[i].Kind, cell)
				if err != nil {
					return Outcome{Verdict: Skip, Detail: err.Error()}
				}
				vals[i] = v
			}
			rows[ti] = append(rows[ti], vals)
		}
	}

	// Per-table split: prefix loads pre-freeze (snapshotted), the rest
	// appends post-compact (WAL-replayed on recovery).
	splits := make([]int, len(c.Tables))
	for ti := range c.Tables {
		n := len(rows[ti])
		s := n / 2
		if ti < len(c.Split) {
			s = c.Split[ti]
		}
		if s < 0 {
			s = 0
		}
		if s > n {
			s = n
		}
		splits[ti] = s
	}
	for ti, t := range tabs {
		for _, vals := range rows[ti][:splits[ti]] {
			if err := t.Append(vals...); err != nil {
				return Outcome{Verdict: Skip, Detail: err.Error()}
			}
		}
	}
	if _, out := c.compareAtPrefix(e1, splits, 0); out.Verdict != Agree {
		return out
	}
	// Snapshot the frozen prefix; post-compact appends live only in the
	// WAL until the crash.
	if err := e1.Compact(context.Background()); err != nil {
		return disagree("pre-crash compact failed: %v", err)
	}
	for ti, t := range tabs {
		for _, vals := range rows[ti][splits[ti]:] {
			if err := t.Append(vals...); err != nil {
				return disagree("post-compact append failed: %v", err)
			}
		}
	}
	full := make([]int, len(c.Tables))
	for ti := range c.Tables {
		full[ti] = len(rows[ti])
	}
	pre, out := c.compareAtPrefix(e1, full, 1)
	if out.Verdict != Agree {
		return out
	}

	// Crash: e1 is abandoned — no drain, no sync, no close. SyncEvery
	// means every acked append is already on stable storage.
	e2 := core.New(core.WithDurability(dir, wal.SyncEvery()))
	if err := e2.RecoveryError(); err != nil {
		return disagree("recovery error: %v", err)
	}
	post, err := e2.Query(c.SQL)
	if err != nil {
		return disagree("post-recovery query failed: %v", err)
	}
	if err := strictSameResult(pre, post); err != nil {
		return disagree("pre-crash vs recovered results differ: %v", err)
	}
	if n := e2.Metrics(); n == nil {
		return disagree("recovered engine has no metrics")
	}
	return Outcome{Verdict: Agree}
}

// GenRecoveryCase wraps the main generator's candidate with random
// split points, replaying the query/dataset space through snapshot +
// WAL-replay recovery.
func (g *Gen) GenRecoveryCase() (*Case, *QuerySpec) {
	c, spec := g.Candidate()
	c.Lane = "recovery"
	c.Split = make([]int, len(c.Tables))
	for i, td := range c.Tables {
		c.Split[i] = g.rnd.Intn(len(td.Rows) + 1)
	}
	return c, spec
}
