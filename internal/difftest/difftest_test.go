package difftest

import (
	"flag"
	"fmt"
	"os"
	"testing"
	"time"
)

var (
	flagSeed  = flag.Int64("difftest.seed", 20260806, "base seed for the deterministic differential run")
	flagLong  = flag.Duration("difftest.duration", 0, "run randomized lanes for this long instead of fixed counts")
	flagCount = flag.Int("difftest.count", 0, "override per-lane case counts (0 = defaults)")
	flagLane  = flag.String("difftest.lane", "", "run only this lane (empty = all)")
)

// laneRun generates cases until want non-skipped runs complete,
// failing with a shrunken JSON artifact on the first disagreement.
func laneRun(t *testing.T, name string, baseSeed int64, want int,
	gen func(*Gen) (*Case, *QuerySpec)) int {
	t.Helper()
	if *flagLane != "" && *flagLane != name {
		return 0
	}
	done := 0
	for i := 0; done < want; i++ {
		if i > want*40+200 {
			t.Fatalf("%s lane: %d/%d cases after %d attempts — generator acceptance collapsed", name, done, want, i)
		}
		g := NewGen(baseSeed + int64(i))
		c, spec := gen(g)
		out := RunLane(c)
		switch out.Verdict {
		case Skip:
			continue
		case Disagree:
			failWithRepro(t, name, c, spec, out)
		}
		done++
	}
	return done
}

func failWithRepro(t *testing.T, lane string, c *Case, spec *QuerySpec, out Outcome) {
	t.Helper()
	c.Note = fmt.Sprintf("%s; first detail: %s", c.Note, out.Detail)
	red := Reduce(c, spec, DefaultCheck)
	f, err := os.CreateTemp("", "lhfuzz-"+lane+"-*.json")
	if err == nil {
		f.Write(red.Marshal())
		f.Close()
		t.Fatalf("%s lane disagreement: %s\nSQL: %s\nshrunken repro written to %s",
			lane, out.Detail, red.SQL, f.Name())
	}
	t.Fatalf("%s lane disagreement: %s\nSQL: %s\nrepro (unwritable): %s",
		lane, out.Detail, red.SQL, red.Marshal())
}

// TestDifferentialShort is the seeded deterministic run behind `make
// difftest`: ≥500 generated query/dataset pairs across the refeval,
// pairwise, and metamorphic oracles (plus the dict-invariant lane),
// zero disagreements expected.
func TestDifferentialShort(t *testing.T) {
	seed := *flagSeed
	counts := map[string]int{
		"refeval":         220,
		"count-partition": 90,
		"permutation":     60,
		"reassociation":   60,
		"spmv":            45,
		"spmm":            45,
		"dict":            80,
		"ingest":          60,
		"hybrid":          600,
		"recovery":        40,
		"approx":          200,
	}
	if *flagCount > 0 {
		for k := range counts {
			counts[k] = *flagCount
		}
	}
	total := 0
	total += laneRun(t, "refeval", seed, counts["refeval"], func(g *Gen) (*Case, *QuerySpec) {
		return g.Candidate()
	})
	total += laneRun(t, "count-partition", seed+1e6, counts["count-partition"], func(g *Gen) (*Case, *QuerySpec) {
		return g.GenCountPartitionCase(), nil
	})
	total += laneRun(t, "permutation", seed+2e6, counts["permutation"], func(g *Gen) (*Case, *QuerySpec) {
		return g.GenPermutationCase(), nil
	})
	total += laneRun(t, "reassociation", seed+3e6, counts["reassociation"], func(g *Gen) (*Case, *QuerySpec) {
		return g.GenReassociationCase(), nil
	})
	total += laneRun(t, "spmv", seed+4e6, counts["spmv"], func(g *Gen) (*Case, *QuerySpec) {
		return g.GenSpMVCase(), nil
	})
	total += laneRun(t, "spmm", seed+5e6, counts["spmm"], func(g *Gen) (*Case, *QuerySpec) {
		return g.GenSpMMCase(), nil
	})
	total += laneRun(t, "dict", seed+6e6, counts["dict"], func(g *Gen) (*Case, *QuerySpec) {
		return g.GenDictCase(), nil
	})
	total += laneRun(t, "ingest", seed+7e6, counts["ingest"], func(g *Gen) (*Case, *QuerySpec) {
		return g.GenIngestCase()
	})
	// Access-path equivalence: forced-WCOJ vs forced-binary vs the
	// cost-based hybrid, bit-identical on every generated pair.
	total += laneRun(t, "hybrid", seed+8e6, counts["hybrid"], func(g *Gen) (*Case, *QuerySpec) {
		return g.GenHybridCase()
	})
	// Durability: snapshot + WAL-replay recovery is invisible to query
	// results (bit-identical pre-crash vs recovered).
	total += laneRun(t, "recovery", seed+9e6, counts["recovery"], func(g *Gen) (*Case, *QuerySpec) {
		return g.GenRecoveryCase()
	})
	// Approximate tier: sketch/sample estimates within their advertised
	// error bounds of the exact reference; no opt-in stays bit-identical.
	total += laneRun(t, "approx", seed+10e6, counts["approx"], func(g *Gen) (*Case, *QuerySpec) {
		return g.GenApproxCase(), nil
	})
	if total < 500 && *flagCount == 0 && *flagLane == "" {
		t.Fatalf("only %d query/dataset pairs ran; want >= 500", total)
	}
	t.Logf("differential run: %d pairs, zero disagreements", total)
}

// TestDifferentialLong is the nightly time-budgeted run behind `make
// difftest-long` (skipped unless -difftest.duration is set).
func TestDifferentialLong(t *testing.T) {
	if *flagLong <= 0 {
		t.Skip("set -difftest.duration to run the long randomized sweep")
	}
	deadline := time.Now().Add(*flagLong)
	seed := time.Now().UnixNano()
	t.Logf("long run: base seed %d, budget %s", seed, *flagLong)
	lanes := []struct {
		name string
		gen  func(*Gen) (*Case, *QuerySpec)
	}{
		{"refeval", func(g *Gen) (*Case, *QuerySpec) { return g.Candidate() }},
		{"count-partition", func(g *Gen) (*Case, *QuerySpec) { return g.GenCountPartitionCase(), nil }},
		{"permutation", func(g *Gen) (*Case, *QuerySpec) { return g.GenPermutationCase(), nil }},
		{"reassociation", func(g *Gen) (*Case, *QuerySpec) { return g.GenReassociationCase(), nil }},
		{"spmv", func(g *Gen) (*Case, *QuerySpec) { return g.GenSpMVCase(), nil }},
		{"spmm", func(g *Gen) (*Case, *QuerySpec) { return g.GenSpMMCase(), nil }},
		{"dict", func(g *Gen) (*Case, *QuerySpec) { return g.GenDictCase(), nil }},
		{"ingest", func(g *Gen) (*Case, *QuerySpec) { return g.GenIngestCase() }},
		{"hybrid", func(g *Gen) (*Case, *QuerySpec) { return g.GenHybridCase() }},
		{"recovery", func(g *Gen) (*Case, *QuerySpec) { return g.GenRecoveryCase() }},
		{"approx", func(g *Gen) (*Case, *QuerySpec) { return g.GenApproxCase(), nil }},
	}
	ran := 0
	for i := 0; time.Now().Before(deadline); i++ {
		lane := lanes[i%len(lanes)]
		g := NewGen(seed + int64(i))
		c, spec := lane.gen(g)
		out := RunLane(c)
		if out.Verdict == Disagree {
			failWithRepro(t, lane.name, c, spec, out)
		}
		if out.Verdict == Agree {
			ran++
		}
	}
	t.Logf("long run: %d pairs, zero disagreements", ran)
}

// FuzzDifferential drives the refeval and dict lanes from a fuzzed
// seed; `go test -fuzz=FuzzDifferential ./internal/difftest` explores
// new generator streams, and the seeded corpus keeps CI deterministic.
func FuzzDifferential(f *testing.F) {
	for _, s := range []int64{1, 42, 20260806, -7} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		g := NewGen(seed)
		for tries := 0; tries < 12; tries++ {
			c, spec := g.Candidate()
			out := RunLane(c)
			if out.Verdict == Disagree {
				failWithRepro(t, "refeval", c, spec, out)
			}
			if out.Verdict == Agree {
				break
			}
		}
		dc := g.GenDictCase()
		if out := RunLane(dc); out.Verdict == Disagree {
			failWithRepro(t, "dict", dc, nil, out)
		}
	})
}

// TestCaseJSONRoundTrip pins the artifact format: NaN, -0.0 and quote
// edge values survive Marshal/Unmarshal.
func TestCaseJSONRoundTrip(t *testing.T) {
	c := &Case{
		Lane: "refeval",
		Tables: []TableDef{{
			Name: "t0",
			Cols: []ColDef{
				{Name: "k0", Kind: "int", Role: "key", Domain: "s0"},
				{Name: "a0", Kind: "float", Role: "ann"},
				{Name: "a1", Kind: "string", Role: "ann"},
			},
			Rows: [][]string{
				{"9223372036854775807", "NaN", "o'hara"},
				{"0", "-0", ""},
			},
		}},
		SQL: "SELECT count(*) FROM t0",
	}
	rt, err := UnmarshalCase(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if string(rt.Marshal()) != string(c.Marshal()) {
		t.Fatalf("round trip changed artifact:\n%s\nvs\n%s", rt.Marshal(), c.Marshal())
	}
	out := RunLane(rt)
	if out.Verdict == Disagree {
		t.Fatalf("round-tripped case disagrees: %s", out.Detail)
	}
}
