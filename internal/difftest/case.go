// Package difftest is the randomized differential and metamorphic
// correctness harness for the LevelHeaded engine (SQLancer-style
// differential testing; QuickCheck-style shrinking). It generates
// random schemas, adversarial datasets (Zipf key reuse, NaN/±0.0,
// math.MaxInt64, empty and quote-bearing strings, empty tables), and
// random SQL inside the supported grammar, then checks the engine
// against three oracle families:
//
//   - refeval: the brute-force nested-loop evaluator (internal/refeval)
//   - pairwise: the classical hash-join LA engine (internal/pairwise)
//     on random sparse matrices (SpMV / SpMM)
//   - metamorphic: oracle-free relations — predicate partitioning
//     COUNT(P) = COUNT(P∧Q) + COUNT(P∧¬Q), FROM/GROUP BY permutation
//     invariance, and aggregate re-association (Σ_g sum_g = sum)
//
// plus a dictionary-invariant lane that drives internal/dict directly.
// Any disagreement is shrunk to a minimal schema+query JSON artifact
// (see Reduce) for replay via cmd/lhfuzz or internal/crosscheck.
package difftest

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/refeval"
	"repro/internal/storage"
)

// ColDef is one column of a test-case table, JSON-stable.
type ColDef struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"` // "int" | "float" | "string" | "date"
	Role   string `json:"role"` // "key" | "ann"
	Domain string `json:"domain,omitempty"`
	PK     bool   `json:"pk,omitempty"`
}

// TableDef is one table with its rows. Cells are canonical strings so
// that NaN, ±Inf and -0.0 survive the JSON round trip: ints and dates
// as decimal day counts, floats via strconv.FormatFloat('g'), strings
// raw.
type TableDef struct {
	Name string     `json:"name"`
	Cols []ColDef   `json:"cols"`
	Rows [][]string `json:"rows"`
}

// Case is a self-contained repro: the dataset plus one SQL query whose
// engine result must match the reference evaluator.
type Case struct {
	Seed   int64      `json:"seed,omitempty"`
	Lane   string     `json:"lane,omitempty"` // which oracle flagged it
	Note   string     `json:"note,omitempty"`
	Tables []TableDef `json:"tables"`
	SQL    string     `json:"sql"`
	// Extra holds companion queries for metamorphic lanes (the variant
	// set that must agree with SQL).
	Extra []string `json:"extra,omitempty"`
	// Split holds, for the ingest lane, the per-table prefix row count
	// loaded before the first query; the rest is appended live. Values
	// are clamped to each table's row count at run time (so row
	// shrinking during Reduce stays sound).
	Split []int `json:"split,omitempty"`
}

// Marshal renders the case as indented JSON.
func (c *Case) Marshal() []byte {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// UnmarshalCase parses a JSON artifact back into a Case.
func UnmarshalCase(b []byte) (*Case, error) {
	var c Case
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, err
	}
	return &c, nil
}

func kindOf(s string) (storage.Kind, error) {
	switch s {
	case "int":
		return storage.Int64, nil
	case "float":
		return storage.Float64, nil
	case "string":
		return storage.String, nil
	case "date":
		return storage.Date, nil
	}
	return 0, fmt.Errorf("difftest: unknown kind %q", s)
}

func kindName(k storage.Kind) string {
	switch k {
	case storage.Int64:
		return "int"
	case storage.Float64:
		return "float"
	case storage.String:
		return "string"
	case storage.Date:
		return "date"
	}
	return "?"
}

func (cd ColDef) storageDef() (storage.ColumnDef, error) {
	k, err := kindOf(cd.Kind)
	if err != nil {
		return storage.ColumnDef{}, err
	}
	role := storage.Annotation
	if cd.Role == "key" {
		role = storage.Key
	}
	return storage.ColumnDef{Name: cd.Name, Kind: k, Role: role, Domain: cd.Domain, PK: cd.PK}, nil
}

// decodeCell parses a canonical cell string into its native value.
func decodeCell(kind string, cell string) (any, error) {
	switch kind {
	case "int", "date":
		v, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("difftest: bad %s cell %q: %v", kind, cell, err)
		}
		return v, nil
	case "float":
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return nil, fmt.Errorf("difftest: bad float cell %q: %v", cell, err)
		}
		return v, nil
	case "string":
		return cell, nil
	}
	return nil, fmt.Errorf("difftest: unknown kind %q", kind)
}

// encodeCell is the inverse of decodeCell.
func encodeCell(v any) string {
	switch x := v.(type) {
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	}
	return fmt.Sprintf("%v", v)
}

// BuildEngine loads the case's tables into a fresh engine.
func (c *Case) BuildEngine(opts ...core.Option) (*core.Engine, error) {
	eng := core.New(opts...)
	for _, td := range c.Tables {
		s := storage.Schema{Name: td.Name}
		for _, cd := range td.Cols {
			def, err := cd.storageDef()
			if err != nil {
				return nil, err
			}
			s.Cols = append(s.Cols, def)
		}
		t, err := eng.CreateTable(s)
		if err != nil {
			return nil, err
		}
		for _, row := range td.Rows {
			if len(row) != len(td.Cols) {
				return nil, fmt.Errorf("difftest: row width %d for %d cols of %s", len(row), len(td.Cols), td.Name)
			}
			vals := make([]any, len(row))
			for i, cell := range row {
				v, err := decodeCell(td.Cols[i].Kind, cell)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			if err := t.AppendRow(vals...); err != nil {
				return nil, err
			}
		}
	}
	return eng, nil
}

// Relations converts the case's tables into refeval form.
func (c *Case) Relations() (map[string]*refeval.Relation, error) {
	rels := map[string]*refeval.Relation{}
	for _, td := range c.Tables {
		s := storage.Schema{Name: td.Name}
		for _, cd := range td.Cols {
			def, err := cd.storageDef()
			if err != nil {
				return nil, err
			}
			s.Cols = append(s.Cols, def)
		}
		rel := &refeval.Relation{Schema: s}
		for _, row := range td.Rows {
			vals := make([]any, len(row))
			for i, cell := range row {
				v, err := decodeCell(td.Cols[i].Kind, cell)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			rel.Rows = append(rel.Rows, vals)
		}
		rels[td.Name] = rel
	}
	return rels, nil
}

// --- result normalization and comparison ---

// normRow is one output row in canonical form: exact key-cell strings
// for group columns (used for pairing) and float64s for aggregates.
type normRow struct {
	key   string
	cells []normCell
}

type normCell struct {
	isNum bool
	num   float64
	str   string
	exact string // canonical pairing string
}

func canonNumKey(f float64) string {
	if math.IsNaN(f) {
		return "NaN"
	}
	if f == 0 {
		return "0"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// canonCellFromEngine normalizes one engine result cell.
func canonCellFromEngine(col *exec.Column, i int) normCell {
	switch col.Kind {
	case exec.KindInt:
		v := col.I64[i]
		return canonInt(v)
	case exec.KindFloat:
		return normCell{isNum: true, num: col.F64[i], exact: canonNumKey(col.F64[i])}
	default:
		return canonStr(col.Str[i])
	}
}

func canonInt(v int64) normCell {
	// Keys can exceed float64's exact range; keep them exact. Values in
	// range canonicalize through float64 so int64 and float64 cells of
	// the same logical value pair up.
	const exactMax = int64(1) << 52
	ex := ""
	if v > exactMax || v < -exactMax {
		ex = strconv.FormatInt(v, 10)
	} else {
		ex = canonNumKey(float64(v))
	}
	return normCell{isNum: true, num: float64(v), exact: ex}
}

func canonStr(s string) normCell {
	// Date-valued group columns surface as "YYYY-MM-DD" strings on some
	// paths and day-count ints on others; normalize to the day count.
	if days, ok := parseDateString(s); ok {
		return canonInt(days)
	}
	return normCell{str: s, exact: "s:" + s}
}

func canonCellFromRef(v any) normCell {
	switch x := v.(type) {
	case int64:
		return canonInt(x)
	case float64:
		return normCell{isNum: true, num: x, exact: canonNumKey(x)}
	case string:
		return canonStr(x)
	case int:
		return canonInt(int64(x))
	}
	return normCell{str: fmt.Sprintf("%v", v), exact: fmt.Sprintf("?%v", v)}
}

func parseDateString(s string) (int64, bool) {
	if len(s) != 10 || s[4] != '-' || s[7] != '-' {
		return 0, false
	}
	for i, ch := range s {
		if i == 4 || i == 7 {
			continue
		}
		if ch < '0' || ch > '9' {
			return 0, false
		}
	}
	var y, m, d int
	fmt.Sscanf(s, "%04d-%02d-%02d", &y, &m, &d)
	if m < 1 || m > 12 || d < 1 || d > 31 {
		return 0, false
	}
	days, err := parseDate(s)
	if err != nil {
		return 0, false
	}
	return int64(days), true
}

// numEqual compares two numeric cells with a relative tolerance that
// absorbs summation-order differences; NaN equals NaN and infinities
// match by sign.
func numEqual(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	diff := math.Abs(a - b)
	if diff == 0 {
		return true
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= 1e-9*scale
}

func cellsEqual(a, b normCell) bool {
	if a.isNum != b.isNum {
		return false
	}
	if a.isNum {
		if a.exact == b.exact {
			return true
		}
		return numEqual(a.num, b.num)
	}
	return a.str == b.str
}

// isAggCols derives, per output column, whether it is aggregate-valued
// (tolerance compare) or a group column (exact pairing key).
func normalizeEngine(res *exec.Result, isAgg []bool) []normRow {
	rows := make([]normRow, res.NumRows)
	for i := 0; i < res.NumRows; i++ {
		r := normRow{}
		var kb strings.Builder
		for ci, col := range res.Cols {
			c := canonCellFromEngine(col, i)
			r.cells = append(r.cells, c)
			if ci < len(isAgg) && !isAgg[ci] {
				kb.WriteString(c.exact)
				kb.WriteByte(0)
			}
		}
		r.key = kb.String()
		rows[i] = r
	}
	return rows
}

func normalizeRef(res *refeval.Result) ([]normRow, []bool) {
	isAgg := make([]bool, len(res.Cols))
	for i, c := range res.Cols {
		isAgg[i] = c.IsAgg
	}
	rows := make([]normRow, res.NumRows)
	for i := 0; i < res.NumRows; i++ {
		r := normRow{}
		var kb strings.Builder
		for ci, col := range res.Cols {
			c := canonCellFromRef(col.Vals[i])
			r.cells = append(r.cells, c)
			if !isAgg[ci] {
				kb.WriteString(c.exact)
				kb.WriteByte(0)
			}
		}
		r.key = kb.String()
		rows[i] = r
	}
	return rows, isAgg
}

// compareRows pairs rows by group key and compares cells.
func compareRows(got, want []normRow) error {
	if len(got) != len(want) {
		return fmt.Errorf("row count: engine %d, reference %d", len(got), len(want))
	}
	index := map[string][]int{}
	for i, r := range want {
		index[r.key] = append(index[r.key], i)
	}
	for _, g := range got {
		cands := index[g.key]
		if len(cands) == 0 {
			return fmt.Errorf("engine row with group key %q missing from reference", g.key)
		}
		matched := -1
		for pos, wi := range cands {
			w := want[wi]
			ok := len(g.cells) == len(w.cells)
			for ci := 0; ok && ci < len(g.cells); ci++ {
				ok = cellsEqual(g.cells[ci], w.cells[ci])
			}
			if ok {
				matched = pos
				break
			}
		}
		if matched < 0 {
			w := want[cands[0]]
			return fmt.Errorf("row mismatch for group key %q: engine %s, reference %s",
				g.key, fmtCells(g.cells), fmtCells(w.cells))
		}
		index[g.key] = append(cands[:matched], cands[matched+1:]...)
	}
	return nil
}

func fmtCells(cells []normCell) string {
	parts := make([]string, len(cells))
	for i, c := range cells {
		if c.isNum {
			parts[i] = strconv.FormatFloat(c.num, 'g', -1, 64)
		} else {
			parts[i] = strconv.Quote(c.str)
		}
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// CompareResults checks an engine result against the reference result.
func CompareResults(engRes *exec.Result, refRes *refeval.Result) error {
	if len(engRes.Cols) != len(refRes.Cols) {
		return fmt.Errorf("column count: engine %d, reference %d", len(engRes.Cols), len(refRes.Cols))
	}
	want, isAgg := normalizeRef(refRes)
	got := normalizeEngine(engRes, isAgg)
	return compareRows(got, want)
}

// CompareEngineResults checks two engine results for multiset equality
// (used by the metamorphic permutation lane). isAgg marks aggregate
// columns by position.
func CompareEngineResults(a, b *exec.Result, isAgg []bool) error {
	if len(a.Cols) != len(b.Cols) {
		return fmt.Errorf("column count: %d vs %d", len(a.Cols), len(b.Cols))
	}
	return compareRows(normalizeEngine(a, isAgg), normalizeEngine(b, isAgg))
}
