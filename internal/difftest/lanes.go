package difftest

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/dict"
	"repro/internal/exec"
	"repro/internal/pairwise"
)

// RunLane dispatches a case to the oracle lane it was generated for,
// so committed artifacts replay through the exact check that caught
// them.
func RunLane(c *Case) Outcome {
	switch c.Lane {
	case "", "refeval":
		return RunRefevalLane(c)
	case "dict":
		return RunDictLane(c)
	case "count-partition":
		return RunCountPartitionLane(c)
	case "permutation":
		return RunPermutationLane(c)
	case "reassociation":
		return RunReassociationLane(c)
	case "spmv":
		return RunSpMVLane(c)
	case "spmm":
		return RunSpMMLane(c)
	case "ingest":
		return RunIngestLane(c)
	case "hybrid":
		return RunHybridLane(c)
	case "recovery":
		return RunRecoveryLane(c)
	case "approx":
		return RunApproxLane(c)
	}
	return Outcome{Verdict: Skip, Detail: "unknown lane " + c.Lane}
}

// --- metamorphic lanes (oracle-free relations) ---

// scalarValue extracts the single aggregate value of a no-GROUP BY
// result; an empty result (empty WCOJ join) counts as 0.
func scalarValue(res *exec.Result) float64 {
	if res.NumRows == 0 || len(res.Cols) == 0 {
		return 0
	}
	return res.Cols[0].F64[0]
}

// RunCountPartitionLane checks COUNT(P) = COUNT(P∧Q) + COUNT(P∧¬Q):
// SQL counts under P, Extra[0] under P∧Q, Extra[1] under P∧¬Q.
func RunCountPartitionLane(c *Case) Outcome {
	if len(c.Extra) != 2 {
		return Outcome{Verdict: Skip, Detail: "count-partition needs 2 extra queries"}
	}
	eng, err := c.BuildEngine()
	if err != nil {
		return Outcome{Verdict: Skip, Detail: err.Error()}
	}
	vals := make([]float64, 3)
	for i, sql := range []string{c.SQL, c.Extra[0], c.Extra[1]} {
		res, err := eng.Query(sql)
		if err != nil {
			if planReject(err) {
				return Outcome{Verdict: Skip, Detail: err.Error()}
			}
			return disagree("query %d failed: %v", i, err)
		}
		vals[i] = scalarValue(res)
	}
	if vals[0] != vals[1]+vals[2] {
		return disagree("COUNT partition violated: count(P)=%v but count(P∧Q)=%v + count(P∧¬Q)=%v",
			vals[0], vals[1], vals[2])
	}
	return Outcome{Verdict: Agree}
}

// RunPermutationLane checks that every Extra query (a FROM/WHERE/GROUP
// BY permutation of SQL) produces the same result multiset. Extra
// queries prefixed with "perm:<i0,i1,...>:" carry a column permutation
// mapping variant column p[k] back to base column k.
func RunPermutationLane(c *Case) Outcome {
	eng, err := c.BuildEngine()
	if err != nil {
		return Outcome{Verdict: Skip, Detail: err.Error()}
	}
	base, err := eng.Query(c.SQL)
	if err != nil {
		if planReject(err) {
			return Outcome{Verdict: Skip, Detail: err.Error()}
		}
		return disagree("base query failed: %v", err)
	}
	isAgg := aggMask(c)
	for _, raw := range c.Extra {
		sql, perm := parsePermPrefix(raw)
		res, err := eng.Query(sql)
		if err != nil {
			if planReject(err) {
				return Outcome{Verdict: Skip, Detail: err.Error()}
			}
			return disagree("variant failed: %v (variant %q)", err, sql)
		}
		if perm != nil {
			if len(perm) != len(res.Cols) {
				return disagree("bad column permutation %v for %d columns", perm, len(res.Cols))
			}
			cols := make([]*exec.Column, len(res.Cols))
			for k, p := range perm {
				cols[k] = res.Cols[p]
			}
			res = &exec.Result{Cols: cols, NumRows: res.NumRows}
		}
		if err := CompareEngineResults(res, base, isAgg); err != nil {
			return disagree("permutation variance: %v (variant %q)", err, sql)
		}
	}
	return Outcome{Verdict: Agree}
}

// aggMask marks aggregate output columns for a generated query: the
// generator always renders group columns first, then aggregates, and
// records the split in Note as "groups=<n>".
func aggMask(c *Case) []bool {
	n := 0
	fmt.Sscanf(c.Note, "groups=%d", &n)
	var mask []bool
	for i := 0; i < n; i++ {
		mask = append(mask, false)
	}
	// Remaining columns are aggregates; CompareEngineResults only reads
	// indices < len(mask) as group columns.
	return mask
}

func parsePermPrefix(raw string) (sql string, perm []int) {
	const pfx = "perm:"
	if len(raw) < len(pfx) || raw[:len(pfx)] != pfx {
		return raw, nil
	}
	rest := raw[len(pfx):]
	for i := 0; i < len(rest); i++ {
		if rest[i] == ':' {
			spec := rest[:i]
			sql = rest[i+1:]
			cur := 0
			has := false
			for j := 0; j <= len(spec); j++ {
				if j == len(spec) || spec[j] == ',' {
					if has {
						perm = append(perm, cur)
					}
					cur, has = 0, false
					continue
				}
				if spec[j] < '0' || spec[j] > '9' {
					return raw, nil
				}
				cur = cur*10 + int(spec[j]-'0')
				has = true
			}
			return sql, perm
		}
	}
	return raw, nil
}

// RunReassociationLane checks semiring re-association: the grouped sums
// of SQL (GROUP BY g SELECT g, sum(x)) must re-add to the global sum
// Extra[0] (SELECT sum(x), same FROM/WHERE).
func RunReassociationLane(c *Case) Outcome {
	if len(c.Extra) != 1 {
		return Outcome{Verdict: Skip, Detail: "reassociation needs 1 extra query"}
	}
	eng, err := c.BuildEngine()
	if err != nil {
		return Outcome{Verdict: Skip, Detail: err.Error()}
	}
	grouped, err := eng.Query(c.SQL)
	if err != nil {
		if planReject(err) {
			return Outcome{Verdict: Skip, Detail: err.Error()}
		}
		return disagree("grouped query failed: %v", err)
	}
	scalar, err := eng.Query(c.Extra[0])
	if err != nil {
		if planReject(err) {
			return Outcome{Verdict: Skip, Detail: err.Error()}
		}
		return disagree("scalar query failed: %v", err)
	}
	sumCol := grouped.Cols[len(grouped.Cols)-1]
	total := 0.0
	for i := 0; i < grouped.NumRows; i++ {
		total += sumCol.F64[i]
	}
	want := scalarValue(scalar)
	if !numEqualLoose(total, want) {
		return disagree("re-association violated: Σ group sums = %v, global sum = %v", total, want)
	}
	return Outcome{Verdict: Agree}
}

func numEqualLoose(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	diff := math.Abs(a - b)
	return diff <= 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// --- linear-algebra lanes against the pairwise engine ---

// RunSpMVLane compares the engine's SpMV SQL against the pairwise
// hash-join engine. The case must hold tables "m"(i,j,v) and
// "x"(k,x) with unique vector keys.
func RunSpMVLane(c *Case) Outcome {
	eng, err := c.BuildEngine()
	if err != nil {
		return Outcome{Verdict: Skip, Detail: err.Error()}
	}
	res, err := eng.Query(c.SQL)
	if err != nil {
		if planReject(err) {
			return Outcome{Verdict: Skip, Detail: err.Error()}
		}
		return disagree("engine SpMV failed: %v", err)
	}
	pw := pairwise.New(eng.Catalog())
	want, err := pw.SpMV("m", "x")
	if err != nil {
		return Outcome{Verdict: Skip, Detail: err.Error()}
	}
	got := map[int64]float64{}
	for r := 0; r < res.NumRows; r++ {
		got[res.Cols[0].I64[r]] = res.Cols[1].F64[r]
	}
	if len(got) != len(want) {
		return disagree("SpMV nnz: engine %d, pairwise %d", len(got), len(want))
	}
	for k, wv := range want {
		gv, ok := got[k]
		if !ok {
			return disagree("SpMV row %d missing from engine result", k)
		}
		if !numEqualLoose(gv, wv) {
			return disagree("SpMV y[%d]: engine %v, pairwise %v", k, gv, wv)
		}
	}
	return Outcome{Verdict: Agree}
}

// RunSpMMLane compares the engine's SpMM SQL against pairwise.SpMM
// via nonzero count and content checksum. Tables "ma" and "mb" hold
// COO triples (i,j,v).
func RunSpMMLane(c *Case) Outcome {
	eng, err := c.BuildEngine()
	if err != nil {
		return Outcome{Verdict: Skip, Detail: err.Error()}
	}
	res, err := eng.Query(c.SQL)
	if err != nil {
		if planReject(err) {
			return Outcome{Verdict: Skip, Detail: err.Error()}
		}
		return disagree("engine SpMM failed: %v", err)
	}
	pw := pairwise.New(eng.Catalog())
	nnz, checksum, err := pw.SpMM("ma", "mb", 0)
	if err != nil {
		return Outcome{Verdict: Skip, Detail: err.Error()}
	}
	if res.NumRows != nnz {
		return disagree("SpMM nnz: engine %d, pairwise %d", res.NumRows, nnz)
	}
	got := 0.0
	for r := 0; r < res.NumRows; r++ {
		i := res.Cols[0].I64[r]
		j := res.Cols[1].I64[r]
		v := res.Cols[2].F64[r]
		got += v * float64(i+2*j+1)
	}
	if !numEqualLoose(got, checksum) {
		return disagree("SpMM checksum: engine %v, pairwise %v", got, checksum)
	}
	return Outcome{Verdict: Agree}
}

// --- dictionary-invariant lane ---

// RunDictLane drives internal/dict with the float multiset stored in
// the case's single table and checks the order-preserving encode
// invariants against a naive sorted-dedup reference.
func RunDictLane(c *Case) Outcome {
	if len(c.Tables) != 1 || len(c.Tables[0].Cols) != 1 {
		return Outcome{Verdict: Skip, Detail: "dict lane wants one single-column table"}
	}
	var vals []float64
	for _, row := range c.Tables[0].Rows {
		v, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return Outcome{Verdict: Skip, Detail: err.Error()}
		}
		vals = append(vals, v)
	}
	return checkDictInvariants(vals)
}

func checkDictInvariants(vals []float64) Outcome {
	b := dict.NewBuilder(dict.Float)
	for _, v := range vals {
		b.AddFloat(v)
	}
	d := b.Build()

	// Naive reference: canonical distinct set (-0 folded, NaN counted
	// once, ordered last).
	seen := map[float64]bool{}
	hasNaN := false
	for _, v := range vals {
		if math.IsNaN(v) {
			hasNaN = true
			continue
		}
		if v == 0 {
			v = 0
		}
		seen[v] = true
	}
	var sorted []float64
	for v := range seen {
		sorted = append(sorted, v)
	}
	sort.Float64s(sorted)

	wantLen := len(sorted)
	if hasNaN {
		wantLen++
	}
	if d.Len() != wantLen {
		return disagree("dict Len = %d, reference distinct = %d", d.Len(), wantLen)
	}
	for i, v := range sorted {
		code, ok := d.EncodeFloat(v)
		if !ok || code != uint32(i) {
			return disagree("EncodeFloat(%v) = %d,%v, want code %d", v, code, ok, i)
		}
		if got := d.DecodeFloat(code); got != v {
			return disagree("DecodeFloat(%d) = %v, want %v", code, got, v)
		}
	}
	if hasNaN {
		code, ok := d.EncodeFloat(math.NaN())
		if !ok || code != uint32(wantLen-1) {
			return disagree("EncodeFloat(NaN) = %d,%v, want last code %d", code, ok, wantLen-1)
		}
		if !math.IsNaN(d.DecodeFloat(code)) {
			return disagree("DecodeFloat(NaN code) = %v, want NaN", d.DecodeFloat(code))
		}
	} else if _, ok := d.EncodeFloat(math.NaN()); ok {
		return disagree("EncodeFloat(NaN) succeeded on NaN-free dictionary")
	}
	// Lower bounds agree with the naive reference on every probe point
	// (members, midpoints, and beyond-range probes).
	probes := append([]float64{}, sorted...)
	for i := 0; i+1 < len(sorted); i++ {
		probes = append(probes, (sorted[i]+sorted[i+1])/2)
	}
	probes = append(probes, math.Inf(-1), math.Inf(1), -1e300, 1e300)
	for _, p := range probes {
		want := uint32(sort.SearchFloat64s(sorted, p))
		if got := d.LowerBoundFloat(p); got != want {
			return disagree("LowerBoundFloat(%v) = %d, reference %d", p, got, want)
		}
	}
	return Outcome{Verdict: Agree}
}

// GenDictCase produces a random float multiset case for the dict lane.
func (g *Gen) GenDictCase() *Case {
	r := g.rnd
	n := r.Intn(24)
	t := TableDef{Name: "floats", Cols: []ColDef{{Name: "v", Kind: "float", Role: "ann"}}}
	for i := 0; i < n; i++ {
		var v float64
		switch r.Intn(8) {
		case 0:
			v = math.NaN()
		case 1:
			v = math.Copysign(0, -1)
		case 2:
			v = 0
		case 3:
			v = math.MaxFloat64
		case 4:
			v = -math.MaxFloat64
		default:
			v = float64(r.Intn(257)-128) / 4
		}
		t.Rows = append(t.Rows, []string{fmtFloat(v)})
	}
	return &Case{Seed: g.seed, Lane: "dict", Tables: []TableDef{t}}
}
