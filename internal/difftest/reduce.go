package difftest

import "strings"

// Check re-runs a candidate case and reports whether it still
// disagrees (the reduction invariant).
type Check func(*Case) bool

// DefaultCheck replays the case through its own lane.
func DefaultCheck(c *Case) bool { return RunLane(c).Verdict == Disagree }

// Reduce shrinks a disagreeing case to a (locally) minimal repro:
// rows are delta-debugged away table by table, then — when the
// query's structured spec is available — filters, HAVING, aggregates
// and GROUP BY items are dropped one at a time. Every step re-checks
// that the disagreement persists. spec may be nil (row shrinking
// only); Reduce never mutates its inputs.
func Reduce(c *Case, spec *QuerySpec, check Check) *Case {
	cur := cloneCase(c)
	var curSpec *QuerySpec
	if spec != nil {
		curSpec = spec.Clone()
	}

	for pass := 0; pass < 6; pass++ {
		changed := false
		if shrinkRows(cur, check) {
			changed = true
		}
		if curSpec != nil && shrinkSpec(cur, curSpec, check) {
			changed = true
		}
		if !changed {
			break
		}
	}
	return cur
}

func cloneCase(c *Case) *Case {
	n := &Case{Seed: c.Seed, Lane: c.Lane, Note: c.Note, SQL: c.SQL}
	n.Extra = append([]string{}, c.Extra...)
	n.Split = append([]int{}, c.Split...)
	for _, t := range c.Tables {
		nt := TableDef{Name: t.Name}
		nt.Cols = append([]ColDef{}, t.Cols...)
		for _, r := range t.Rows {
			nt.Rows = append(nt.Rows, append([]string{}, r...))
		}
		n.Tables = append(n.Tables, nt)
	}
	return n
}

// shrinkRows removes row chunks (halves, then quarters, down to single
// rows) from each table while the case still disagrees.
func shrinkRows(c *Case, check Check) bool {
	shrunk := false
	for ti := range c.Tables {
		rows := c.Tables[ti].Rows
		chunk := (len(rows) + 1) / 2
		for chunk >= 1 {
			removedAny := false
			for start := 0; start < len(rows); {
				end := start + chunk
				if end > len(rows) {
					end = len(rows)
				}
				cand := make([][]string, 0, len(rows)-(end-start))
				cand = append(cand, rows[:start]...)
				cand = append(cand, rows[end:]...)
				c.Tables[ti].Rows = cand
				if check(c) {
					rows = cand
					shrunk = true
					removedAny = true
					// Re-scan from the same start: the chunk there is new.
				} else {
					c.Tables[ti].Rows = rows
					start = end
				}
			}
			if !removedAny || chunk == 1 {
				chunk /= 2
			}
		}
		c.Tables[ti].Rows = rows
	}
	return shrunk
}

// shrinkSpec drops query parts one at a time, re-rendering SQL after
// each accepted drop.
func shrinkSpec(c *Case, spec *QuerySpec, check Check) bool {
	shrunk := false
	try := func(mut *QuerySpec) bool {
		old := c.SQL
		c.SQL = mut.SQL()
		if check(c) {
			*spec = *mut
			return true
		}
		c.SQL = old
		return false
	}

	// Drop HAVING.
	if spec.Having != "" {
		mut := spec.Clone()
		mut.Having = ""
		if try(mut) {
			shrunk = true
		}
	}
	// Drop filters.
	for i := 0; i < len(spec.Filters); {
		mut := spec.Clone()
		mut.Filters = append(append([]string{}, spec.Filters[:i]...), spec.Filters[i+1:]...)
		if try(mut) {
			shrunk = true
		} else {
			i++
		}
	}
	// Drop aggregates (keep at least one output item).
	for i := 0; i < len(spec.Aggs) && len(spec.GroupBy)+len(spec.Aggs) > 1; {
		mut := spec.Clone()
		mut.Aggs = append(append([]string{}, spec.Aggs[:i]...), spec.Aggs[i+1:]...)
		if mut.Having != "" && !strings.Contains(strings.Join(mut.Aggs, " "), havingAgg(mut.Having)) {
			mut.Having = ""
		}
		if try(mut) {
			shrunk = true
		} else {
			i++
		}
	}
	// Drop GROUP BY items.
	for i := 0; i < len(spec.GroupBy) && len(spec.GroupBy)+len(spec.Aggs) > 1; {
		mut := spec.Clone()
		mut.GroupBy = append(append([]string{}, spec.GroupBy[:i]...), spec.GroupBy[i+1:]...)
		if try(mut) {
			shrunk = true
		} else {
			i++
		}
	}
	return shrunk
}

// havingAgg extracts the aggregate expression a generated HAVING
// clause references (everything before the comparison operator).
func havingAgg(h string) string {
	for _, op := range []string{" > ", " <= ", " <> ", " >= ", " < ", " = "} {
		if i := strings.Index(h, op); i >= 0 {
			return h[:i]
		}
	}
	return h
}
