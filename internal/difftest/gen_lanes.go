package difftest

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// GenCountPartitionCase builds a dataset plus the three counting
// queries of the predicate-partitioning relation
// COUNT(P) = COUNT(P∧Q) + COUNT(P∧¬Q).
func (g *Gen) GenCountPartitionCase() *Case {
	r := g.rnd
	base, _ := g.Candidate()

	// Rebuild the FROM/JOIN skeleton and draw P (optional) and Q
	// (required) over it.
	tables, bound, joins := g.rebind(base)
	_ = tables
	var pParts []string
	pParts = append(pParts, joins...)
	if r.Intn(2) == 0 {
		if p := g.genFilter(bound); p != "" {
			pParts = append(pParts, p)
		}
	}
	q := ""
	for tries := 0; q == "" && tries < 8; tries++ {
		q = g.genFilter(bound)
	}
	if q == "" {
		q = "1 = 1"
	}

	mk := func(extra ...string) string {
		preds := append(append([]string{}, pParts...), extra...)
		sql := "SELECT count(*) FROM " + fromList(base)
		if len(preds) > 0 {
			sql += " WHERE " + strings.Join(preds, " AND ")
		}
		return sql
	}
	c := &Case{
		Seed:   g.seed,
		Lane:   "count-partition",
		Tables: base.Tables,
		SQL:    mk(),
		Extra:  []string{mk(q), mk("NOT (" + q + ")")},
	}
	return c
}

// GenPermutationCase builds a grouped query plus permuted variants:
// reversed FROM list with swapped join sides, reversed predicate
// order, and a reversed GROUP BY list (with a column permutation
// prefix so results re-align).
func (g *Gen) GenPermutationCase() *Case {
	r := g.rnd
	var c *Case
	var spec *QuerySpec
	for tries := 0; tries < 32; tries++ {
		c, spec = g.Candidate()
		if len(spec.GroupBy) >= 1 && len(spec.From) >= 1 {
			break
		}
	}
	if len(spec.GroupBy) == 0 {
		// Force one group column.
		spec.GroupBy = append(spec.GroupBy, spec.From[0].Alias+"."+firstColName(c, spec.From[0].Table))
		c.SQL = spec.SQL()
	}
	c.Lane = "permutation"
	c.Note = fmt.Sprintf("groups=%d", len(spec.GroupBy))

	// Variant 1: reverse FROM and predicate order, swap join sides.
	v1 := spec.Clone()
	reverseFrom(v1)
	for i, j := range v1.Joins {
		if l, op, rr, ok := splitEq(j); ok && op == "=" {
			v1.Joins[i] = rr + " = " + l
		}
	}
	reverseStrings(v1.Joins)
	reverseStrings(v1.Filters)
	c.Extra = append(c.Extra, v1.SQL())

	// Variant 2: reversed GROUP BY (output columns permute with it).
	if len(spec.GroupBy) > 1 {
		v2 := spec.Clone()
		reverseStrings(v2.GroupBy)
		nG, nA := len(spec.GroupBy), len(spec.Aggs)
		perm := make([]string, 0, nG+nA)
		for k := 0; k < nG; k++ {
			perm = append(perm, strconv.Itoa(nG-1-k))
		}
		for k := 0; k < nA; k++ {
			perm = append(perm, strconv.Itoa(nG+k))
		}
		c.Extra = append(c.Extra, "perm:"+strings.Join(perm, ",")+":"+v2.SQL())
	}

	// Variant 3: shuffled filter order only.
	if len(spec.Filters) > 1 {
		v3 := spec.Clone()
		r.Shuffle(len(v3.Filters), func(i, j int) {
			v3.Filters[i], v3.Filters[j] = v3.Filters[j], v3.Filters[i]
		})
		c.Extra = append(c.Extra, v3.SQL())
	}
	return c
}

// GenReassociationCase builds GROUP BY g SELECT g, sum(x) plus the
// global SELECT sum(x): grouped sums must re-add to the global sum.
func (g *Gen) GenReassociationCase() *Case {
	var c *Case
	var spec *QuerySpec
	var sumArg string
	for tries := 0; tries < 64; tries++ {
		c, spec = g.Candidate()
		_, bound, _ := g.rebind(c)
		cols := numericAnnCols(bound, true)
		if len(cols) == 0 {
			continue
		}
		sumArg = cols[g.rnd.Intn(len(cols))]
		if len(spec.GroupBy) == 0 {
			spec.GroupBy = []string{spec.From[0].Alias + "." + firstColName(c, spec.From[0].Table)}
		}
		break
	}
	if sumArg == "" {
		sumArg = "1"
	}
	if len(spec.GroupBy) == 0 {
		spec.GroupBy = []string{spec.From[0].Alias + "." + firstColName(c, spec.From[0].Table)}
	}
	spec.GroupBy = spec.GroupBy[:1]
	spec.Aggs = []string{"sum(" + sumArg + ")"}
	spec.Having = ""
	c.Lane = "reassociation"
	c.SQL = spec.SQL()
	scalar := spec.Clone()
	scalar.GroupBy = nil
	c.Extra = []string{scalar.SQL()}
	return c
}

// GenSpMVCase builds a random sparse matrix-vector pair and the SpMV
// query for the pairwise lane.
func (g *Gen) GenSpMVCase() *Case {
	r := g.rnd
	n := 1 + r.Intn(10)
	m := TableDef{Name: "m", Cols: []ColDef{
		{Name: "i", Kind: "int", Role: "key", Domain: "row"},
		{Name: "j", Kind: "int", Role: "key", Domain: "col"},
		{Name: "v", Kind: "float", Role: "ann"},
	}}
	nnz := r.Intn(n*n + 1)
	for e := 0; e < nnz; e++ {
		m.Rows = append(m.Rows, []string{
			strconv.Itoa(r.Intn(n)),
			strconv.Itoa(r.Intn(n)),
			fmtFloat(float64(r.Intn(65)-32) / 4),
		})
	}
	x := TableDef{Name: "x", Cols: []ColDef{
		{Name: "k", Kind: "int", Role: "key", Domain: "col", PK: true},
		{Name: "x", Kind: "float", Role: "ann"},
	}}
	perm := r.Perm(n)
	cover := r.Intn(n + 1)
	sort.Ints(perm[:cover])
	for _, k := range perm[:cover] {
		x.Rows = append(x.Rows, []string{
			strconv.Itoa(k),
			fmtFloat(float64(r.Intn(65)-32) / 4),
		})
	}
	return &Case{
		Seed:   g.seed,
		Lane:   "spmv",
		Tables: []TableDef{m, x},
		SQL:    "SELECT m.i, sum(m.v * x.x) FROM m, x WHERE m.j = x.k GROUP BY m.i",
	}
}

// GenSpMMCase builds two random sparse matrices and the SpMM query.
func (g *Gen) GenSpMMCase() *Case {
	r := g.rnd
	n := 1 + r.Intn(8)
	mk := func(name, di, dj string) TableDef {
		t := TableDef{Name: name, Cols: []ColDef{
			{Name: "i", Kind: "int", Role: "key", Domain: di},
			{Name: "j", Kind: "int", Role: "key", Domain: dj},
			{Name: "v", Kind: "float", Role: "ann"},
		}}
		nnz := r.Intn(n*n + 1)
		for e := 0; e < nnz; e++ {
			t.Rows = append(t.Rows, []string{
				strconv.Itoa(r.Intn(n)),
				strconv.Itoa(r.Intn(n)),
				fmtFloat(float64(r.Intn(33)-16) / 4),
			})
		}
		return t
	}
	return &Case{
		Seed:   g.seed,
		Lane:   "spmm",
		Tables: []TableDef{mk("ma", "row", "mid"), mk("mb", "mid", "col")},
		SQL:    "SELECT ma.i, mb.j, sum(ma.v * mb.v) FROM ma, mb WHERE ma.j = mb.i GROUP BY ma.i, mb.j",
	}
}

// --- shared helpers ---

// rebind reconstructs generator bookkeeping (bound tables with value
// samples) for a case produced earlier, so new filters can be drawn
// over the same dataset.
func (g *Gen) rebind(c *Case) ([]*genTable, []boundTable, []string) {
	var tables []*genTable
	byName := map[string]*genTable{}
	for ti := range c.Tables {
		td := c.Tables[ti]
		gt := &genTable{def: td}
		for ci := range td.Cols {
			gc := &genCol{def: td.Cols[ci]}
			for _, row := range td.Rows {
				g.recordSample(gc, row[ci])
				if gc.def.Kind == "float" {
					if len(gc.sampleF) > 0 && gc.sampleF[len(gc.sampleF)-1] != gc.sampleF[len(gc.sampleF)-1] {
						gc.hasNaN = true
					}
				}
			}
			gt.cols = append(gt.cols, gc)
		}
		tables = append(tables, gt)
		byName[td.Name] = gt
	}
	var bound []boundTable
	var joins []string
	// Recover FROM aliases and join predicates from the case SQL via a
	// light parse of the generated shape.
	sql := c.SQL
	fromIdx := strings.Index(sql, " FROM ")
	if fromIdx < 0 {
		for _, t := range tables {
			bound = append(bound, boundTable{t.def.Name, t})
		}
		return tables, bound, joins
	}
	rest := sql[fromIdx+6:]
	end := len(rest)
	for _, kw := range []string{" WHERE ", " GROUP BY ", " HAVING "} {
		if i := strings.Index(rest, kw); i >= 0 && i < end {
			end = i
		}
	}
	for _, item := range strings.Split(rest[:end], ", ") {
		parts := strings.Split(strings.TrimSpace(item), " AS ")
		tname := strings.TrimSpace(parts[0])
		alias := tname
		if len(parts) == 2 {
			alias = strings.TrimSpace(parts[1])
		}
		if t := byName[tname]; t != nil {
			bound = append(bound, boundTable{alias, t})
		}
	}
	if wi := strings.Index(sql, " WHERE "); wi >= 0 {
		wend := len(sql)
		for _, kw := range []string{" GROUP BY ", " HAVING "} {
			if i := strings.Index(sql, kw); i >= 0 && i < wend {
				wend = i
			}
		}
		for _, pred := range strings.Split(sql[wi+7:wend], " AND ") {
			if l, op, rr, ok := splitEq(pred); ok && op == "=" &&
				strings.Count(l, ".") == 1 && strings.Count(rr, ".") == 1 &&
				!strings.ContainsAny(l+rr, "'()") &&
				aliasPart(l) != aliasPart(rr) {
				joins = append(joins, strings.TrimSpace(pred))
			}
		}
	}
	if len(bound) == 0 {
		for _, t := range tables {
			bound = append(bound, boundTable{t.def.Name, t})
		}
	}
	return tables, bound, joins
}

func aliasPart(ref string) string {
	ref = strings.TrimSpace(ref)
	if i := strings.Index(ref, "."); i > 0 {
		return ref[:i]
	}
	return ref
}

func splitEq(pred string) (l, op, r string, ok bool) {
	i := strings.Index(pred, " = ")
	if i < 0 {
		return "", "", "", false
	}
	return strings.TrimSpace(pred[:i]), "=", strings.TrimSpace(pred[i+3:]), true
}

func fromList(c *Case) string {
	sql := c.SQL
	fi := strings.Index(sql, " FROM ")
	if fi < 0 {
		return c.Tables[0].Name
	}
	rest := sql[fi+6:]
	end := len(rest)
	for _, kw := range []string{" WHERE ", " GROUP BY ", " HAVING "} {
		if i := strings.Index(rest, kw); i >= 0 && i < end {
			end = i
		}
	}
	return rest[:end]
}

func firstColName(c *Case, table string) string {
	for _, t := range c.Tables {
		if t.Name == table {
			return t.Cols[0].Name
		}
	}
	return "k"
}

func reverseFrom(s *QuerySpec) {
	for i, j := 0, len(s.From)-1; i < j; i, j = i+1, j-1 {
		s.From[i], s.From[j] = s.From[j], s.From[i]
	}
}

func reverseStrings(xs []string) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// RandomSortedU32 draws a random strictly-sorted uint32 slice from the
// generator's stream — the shared driver for set-kernel property tests.
func (g *Gen) RandomSortedU32(maxLen, maxVal int) []uint32 {
	r := g.rnd
	n := r.Intn(maxLen + 1)
	seen := map[uint32]bool{}
	for i := 0; i < n; i++ {
		seen[uint32(r.Intn(maxVal+1))] = true
	}
	out := make([]uint32, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
