package difftest

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/refeval"
)

// The approx lane drives the approximate query tier against the
// brute-force reference evaluator: every estimate must land within its
// advertised error bound of the exact answer, groups absent from an
// approximate answer must be small (MissBound), and whenever the tier
// declines (Stats.Approx=false) the opt-in must be invisible —
// bit-identical to the plain run and exact against the reference.
//
// The lane pins the reservoir capacity at 64 rows so the cost model's
// 4x rule engages at small generated tables: sample routes from 256
// rows, sketch routes from ~1.6k rows.
const approxLaneSampleRows = 64

// GenApproxCase builds one single-table dataset plus a tier-shaped
// aggregate query. Data is deliberately benign — bounded ints, quarter
// -multiple floats, no NaN — so the advertised bounds hold
// deterministically at every seed.
func (g *Gen) GenApproxCase() *Case {
	r := g.rnd

	// Row count spans the route regimes for a 64-row reservoir:
	// below every threshold (exact), sample-only, and sketch-eligible.
	var n int
	switch r.Intn(4) {
	case 0:
		n = 20 + r.Intn(230)
	case 1:
		n = 300 + r.Intn(1200)
	default:
		n = 1700 + r.Intn(1600)
	}
	dk := 1 + r.Intn(500)
	groupVals := stringPool[:1+r.Intn(10)]

	t := TableDef{Name: "t0", Cols: []ColDef{
		{Name: "k", Kind: "int", Role: "key", Domain: "d0"},
		{Name: "v", Kind: "int", Role: "ann"},
		{Name: "s", Kind: "string", Role: "ann"},
		{Name: "f", Kind: "float", Role: "ann"},
	}}
	for i := 0; i < n; i++ {
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(r.Intn(dk)),
			strconv.Itoa(r.Intn(101) - 50),
			groupVals[r.Intn(len(groupVals))],
			fmtFloat(float64(r.Intn(129)-64) / 4),
		})
	}

	// Filter thresholds keep selectivity >= ~40% so sample estimates
	// never run dry. Grouped shapes always put count(*) first after the
	// group column: the miss check reads a group's true size from it.
	x := r.Intn(41) - 10
	var sql string
	nG := 0
	switch r.Intn(8) {
	case 0:
		sql = "SELECT count(distinct k) FROM t0"
	case 1:
		sql = "SELECT count(distinct k), count(*) FROM t0"
	case 2:
		sql = fmt.Sprintf("SELECT count(distinct k) FROM t0 WHERE v < %d", x)
	case 3:
		sql = "SELECT s, count(*) FROM t0 GROUP BY s"
		nG = 1
	case 4:
		sql = fmt.Sprintf("SELECT count(*), sum(v) FROM t0 WHERE v < %d", x)
	case 5:
		sql = fmt.Sprintf("SELECT avg(f), count(*) FROM t0 WHERE v >= %d", -(10 + r.Intn(31)))
	case 6:
		sql = fmt.Sprintf("SELECT s, count(*), sum(v) FROM t0 WHERE v < %d GROUP BY s", x)
		nG = 1
	case 7:
		sql = "SELECT min(v), max(f) FROM t0"
	}
	return &Case{
		Seed:   g.seed,
		Lane:   "approx",
		Note:   fmt.Sprintf("groups=%d", nG),
		Tables: []TableDef{t},
		SQL:    sql,
	}
}

// RunApproxLane runs the case with ApproxOK set and checks the tier's
// accuracy contract against refeval's exact answer.
func RunApproxLane(c *Case) Outcome {
	eng, err := c.BuildEngine(core.WithApproxSampleRows(approxLaneSampleRows))
	if err != nil {
		return Outcome{Verdict: Skip, Detail: err.Error()}
	}
	res, err := eng.QueryWith(c.SQL, core.QueryOptions{ApproxOK: true})
	if err != nil {
		if planReject(err) {
			return Outcome{Verdict: Skip, Detail: err.Error()}
		}
		return disagree("approx query failed: %v", err)
	}
	rels, err := c.Relations()
	if err != nil {
		return Outcome{Verdict: Skip, Detail: err.Error()}
	}
	want, refErr := refeval.Eval(c.SQL, rels)
	if refErr != nil {
		return Outcome{Verdict: Skip, Detail: refErr.Error()}
	}

	st := res.Stats
	if st == nil || !st.Approx {
		// The tier declined (or served exactly): the opt-in must be
		// invisible. Bit-identical to the plain run, exact vs reference.
		plain, err := eng.Query(c.SQL)
		if err != nil {
			if planReject(err) {
				return Outcome{Verdict: Skip, Detail: err.Error()}
			}
			return disagree("plain query failed: %v", err)
		}
		if err := CompareEngineResults(res, plain, aggMask(c)); err != nil {
			return disagree("ApproxOK changed an exact answer: %v", err)
		}
		if err := CompareResults(res, want); err != nil {
			return disagree("exact answer disagrees with reference: %v", err)
		}
		return Outcome{Verdict: Agree}
	}
	return checkApproxBounds(c, res, want, st)
}

// checkApproxBounds verifies an approximate answer against the exact
// reference: per-column |estimate - exact| within the advertised
// ErrorBounds entry, approximate groups a subset of exact groups, and
// every missing group's true count within MissBound.
func checkApproxBounds(c *Case, res *exec.Result, want *refeval.Result, st *obs.QueryStats) Outcome {
	if len(res.Cols) != len(want.Cols) {
		return disagree("column count: approx %d, reference %d", len(res.Cols), len(want.Cols))
	}
	if len(st.ErrorBounds) != len(res.Cols) {
		return disagree("ErrorBounds has %d entries for %d output columns", len(st.ErrorBounds), len(res.Cols))
	}
	if !(st.Confidence > 0 && st.Confidence <= 1) {
		return disagree("approximate answer with confidence %v", st.Confidence)
	}
	nG := 0
	fmt.Sscanf(c.Note, "groups=%d", &nG)

	type exactRow struct {
		vals    []float64
		claimed bool
	}
	exact := map[string]*exactRow{}
	for r := 0; r < want.NumRows; r++ {
		key := ""
		for gi := 0; gi < nG; gi++ {
			key += approxGroupKey(want.Cols[gi].Vals[r]) + "\x00"
		}
		vals := make([]float64, len(want.Cols)-nG)
		for ci := nG; ci < len(want.Cols); ci++ {
			f, ok := want.Cols[ci].Vals[r].(float64)
			if !ok {
				return Outcome{Verdict: Skip, Detail: fmt.Sprintf("non-float reference aggregate %T", want.Cols[ci].Vals[r])}
			}
			vals[ci-nG] = f
		}
		exact[key] = &exactRow{vals: vals}
	}

	for r := 0; r < res.NumRows; r++ {
		key := ""
		for gi := 0; gi < nG; gi++ {
			key += approxGroupKey(engineCell(res.Cols[gi], r)) + "\x00"
		}
		ex := exact[key]
		if ex == nil {
			return disagree("approx answer invented group %q (route %s)", key, st.ApproxRoute)
		}
		ex.claimed = true
		for ci := nG; ci < len(res.Cols); ci++ {
			got := res.Cols[ci].F64[r]
			wv := ex.vals[ci-nG]
			if math.IsNaN(got) && math.IsNaN(wv) {
				continue
			}
			diff := math.Abs(got - wv)
			slack := st.ErrorBounds[ci] + 1e-9*math.Max(1, math.Abs(wv))
			if !(diff <= slack) {
				return disagree("column %d: approx %v, exact %v, error %v exceeds advertised bound %v (route %s)",
					ci, got, wv, diff, st.ErrorBounds[ci], st.ApproxRoute)
			}
		}
	}

	if nG > 0 {
		// Grouped lane shapes always select count(*) as the first
		// aggregate, so a missing group's true size is vals[0].
		for key, ex := range exact {
			if ex.claimed {
				continue
			}
			if ex.vals[0] > st.MissBound {
				return disagree("group %q (true count %v) missing from approx answer; advertised miss bound %v (route %s)",
					key, ex.vals[0], st.MissBound, st.ApproxRoute)
			}
		}
	}
	return Outcome{Verdict: Agree}
}

// approxGroupKey canonicalizes one group value from either side
// (engine native cell or refeval value) for exact pairing.
func approxGroupKey(v any) string {
	switch x := v.(type) {
	case int64:
		return "i" + strconv.FormatInt(x, 10)
	case int32:
		return "i" + strconv.FormatInt(int64(x), 10)
	case float64:
		if math.IsNaN(x) {
			return "fNaN"
		}
		if x == 0 {
			x = 0
		}
		return "f" + strconv.FormatFloat(x, 'x', -1, 64)
	case string:
		return "s" + x
	}
	return fmt.Sprintf("?%v", v)
}

// engineCell extracts a native group value from an engine column.
func engineCell(col *exec.Column, r int) any {
	switch col.Kind {
	case exec.KindString:
		return col.Str[r]
	case exec.KindFloat:
		return col.F64[r]
	default:
		return col.I64[r]
	}
}
