package difftest

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/refeval"
	"repro/internal/storage"
)

// RunIngestLane exercises the live-data path: load only a prefix of
// each table, query (which freezes the catalog), then append the
// remaining rows in two batches while comparing the engine against
// refeval on the growing dataset after every batch. Finally it runs
// the query immediately before and after a Compact and demands
// bit-identical results — compaction must be invisible to readers.
func RunIngestLane(c *Case) Outcome {
	eng := core.New()
	tabs := make([]*storage.Table, len(c.Tables))
	rows := make([][][]any, len(c.Tables)) // decoded rows per table
	for ti, td := range c.Tables {
		s := storage.Schema{Name: td.Name}
		for _, cd := range td.Cols {
			def, err := cd.storageDef()
			if err != nil {
				return Outcome{Verdict: Skip, Detail: err.Error()}
			}
			s.Cols = append(s.Cols, def)
		}
		t, err := eng.CreateTable(s)
		if err != nil {
			return Outcome{Verdict: Skip, Detail: err.Error()}
		}
		tabs[ti] = t
		for _, row := range td.Rows {
			if len(row) != len(td.Cols) {
				return Outcome{Verdict: Skip, Detail: "row width mismatch"}
			}
			vals := make([]any, len(row))
			for i, cell := range row {
				v, err := decodeCell(td.Cols[i].Kind, cell)
				if err != nil {
					return Outcome{Verdict: Skip, Detail: err.Error()}
				}
				vals[i] = v
			}
			rows[ti] = append(rows[ti], vals)
		}
	}

	// Clamp the splits so Reduce can shrink rows without invalidating
	// the case, then derive three cumulative load points per table:
	// prefix, prefix + half the remainder, everything.
	stages := make([][3]int, len(c.Tables))
	for ti := range c.Tables {
		n := len(rows[ti])
		s := n / 2
		if ti < len(c.Split) {
			s = c.Split[ti]
		}
		if s < 0 {
			s = 0
		}
		if s > n {
			s = n
		}
		mid := s + (n-s+1)/2
		stages[ti] = [3]int{s, mid, n}
	}

	// Load each table's prefix, pre-freeze.
	for ti, t := range tabs {
		for _, vals := range rows[ti][:stages[ti][0]] {
			if err := t.Append(vals...); err != nil {
				return Outcome{Verdict: Skip, Detail: err.Error()}
			}
		}
	}

	var last *exec.Result
	for stage := 0; stage < 3; stage++ {
		if stage > 0 {
			// Append this stage's batch — the engine is frozen by now, so
			// these rows land in the delta stores.
			for ti, t := range tabs {
				for _, vals := range rows[ti][stages[ti][stage-1]:stages[ti][stage]] {
					if err := t.Append(vals...); err != nil {
						return disagree("stage %d append failed: %v", stage, err)
					}
				}
			}
		}
		counts := make([]int, len(c.Tables))
		for ti := range c.Tables {
			counts[ti] = stages[ti][stage]
		}
		res, out := c.compareAtPrefix(eng, counts, stage)
		if out.Verdict != Agree {
			return out
		}
		last = res
	}

	// Compaction must not change a single bit of the result.
	if err := eng.Compact(context.Background()); err != nil {
		return disagree("compact failed: %v", err)
	}
	post, err := eng.Query(c.SQL)
	if err != nil {
		return disagree("post-compact query failed: %v", err)
	}
	if err := strictSameResult(last, post); err != nil {
		return disagree("pre/post-compact results differ: %v", err)
	}
	// And the deltas must actually be folded away.
	for _, t := range tabs {
		if d := t.DeltaRows(); d != 0 {
			return disagree("table %s still has %d delta rows after compact", t.Schema.Name, d)
		}
	}
	return Outcome{Verdict: Agree}
}

// compareAtPrefix runs c.SQL on the live engine and on refeval over
// the first counts[i] rows of each table, comparing like the refeval
// lane.
func (c *Case) compareAtPrefix(eng *core.Engine, counts []int, stage int) (*exec.Result, Outcome) {
	engRes, engErr := eng.Query(c.SQL)

	rels, err := c.Relations()
	if err != nil {
		return nil, Outcome{Verdict: Skip, Detail: err.Error()}
	}
	for ti, td := range c.Tables {
		rel := rels[td.Name]
		rel.Rows = rel.Rows[:counts[ti]]
	}
	refRes, refErr := refeval.Eval(c.SQL, rels)

	switch {
	case engErr != nil && planReject(engErr):
		return nil, Outcome{Verdict: Skip, Detail: engErr.Error()}
	case engErr != nil && refErr != nil:
		return nil, Outcome{Verdict: Skip, Detail: engErr.Error()}
	case engErr != nil:
		return nil, disagree("stage %d: engine failed, reference succeeded: %v", stage, engErr)
	case refErr != nil:
		return nil, Outcome{Verdict: Skip, Detail: refErr.Error()}
	}
	if err := CompareResults(engRes, refRes); err != nil {
		return nil, disagree("stage %d (rows %v): %v", stage, counts, err)
	}
	return engRes, Outcome{Verdict: Agree}
}

// strictSameResult demands bitwise-identical result multisets: same
// columns, same rows, aggregates compared by exact float bits (no
// tolerance). Row order may legitimately vary between runs (hash-table
// emit order), so rows are canonicalized and sorted first.
func strictSameResult(a, b *exec.Result) error {
	if a.NumRows != b.NumRows {
		return fmt.Errorf("row count %d vs %d", a.NumRows, b.NumRows)
	}
	if len(a.Cols) != len(b.Cols) {
		return fmt.Errorf("column count %d vs %d", len(a.Cols), len(b.Cols))
	}
	for i := range a.Cols {
		if a.Cols[i].Kind != b.Cols[i].Kind || a.Cols[i].Name != b.Cols[i].Name {
			return fmt.Errorf("column %d: %s/%v vs %s/%v",
				i, a.Cols[i].Name, a.Cols[i].Kind, b.Cols[i].Name, b.Cols[i].Kind)
		}
	}
	ka, kb := strictRowKeys(a), strictRowKeys(b)
	for i := range ka {
		if ka[i] != kb[i] {
			return fmt.Errorf("row %d (canonical order): %q vs %q", i, ka[i], kb[i])
		}
	}
	return nil
}

func strictRowKeys(res *exec.Result) []string {
	keys := make([]string, res.NumRows)
	var sb strings.Builder
	for i := 0; i < res.NumRows; i++ {
		sb.Reset()
		for _, col := range res.Cols {
			switch col.Kind {
			case exec.KindInt:
				sb.WriteString(strconv.FormatInt(col.I64[i], 10))
			case exec.KindFloat:
				sb.WriteString(strconv.FormatUint(math.Float64bits(col.F64[i]), 16))
			default:
				sb.WriteString(col.Str[i])
			}
			sb.WriteByte(0)
		}
		keys[i] = sb.String()
	}
	sort.Strings(keys)
	return keys
}

// GenIngestCase wraps the main generator's candidate with random
// per-table split points, so the same query/dataset space is replayed
// through partial load + live append + compaction.
func (g *Gen) GenIngestCase() (*Case, *QuerySpec) {
	c, spec := g.Candidate()
	c.Lane = "ingest"
	c.Split = make([]int, len(c.Tables))
	for i, td := range c.Tables {
		c.Split[i] = g.rnd.Intn(len(td.Rows) + 1)
	}
	return c, spec
}
