package difftest

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/sqlparse"
)

// FromItem is one FROM-list entry of a generated query.
type FromItem struct {
	Table string `json:"table"`
	Alias string `json:"alias"`
}

// QuerySpec is the structured form of a generated query. The reducer
// shrinks specs (dropping filters, group items, aggregates) and
// re-renders SQL, which keeps string escaping correct without an AST
// printer.
type QuerySpec struct {
	From    []FromItem `json:"from"`
	Joins   []string   `json:"joins,omitempty"`
	Filters []string   `json:"filters,omitempty"`
	GroupBy []string   `json:"group_by,omitempty"`
	Aggs    []string   `json:"aggs,omitempty"`
	Having  string     `json:"having,omitempty"`
}

// SQL renders the spec as a query string.
func (s *QuerySpec) SQL() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	var items []string
	items = append(items, s.GroupBy...)
	items = append(items, s.Aggs...)
	sb.WriteString(strings.Join(items, ", "))
	sb.WriteString(" FROM ")
	var froms []string
	for _, f := range s.From {
		if f.Alias != "" && f.Alias != f.Table {
			froms = append(froms, f.Table+" AS "+f.Alias)
		} else {
			froms = append(froms, f.Table)
		}
	}
	sb.WriteString(strings.Join(froms, ", "))
	preds := append(append([]string{}, s.Joins...), s.Filters...)
	if len(preds) > 0 {
		sb.WriteString(" WHERE ")
		sb.WriteString(strings.Join(preds, " AND "))
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		sb.WriteString(strings.Join(s.GroupBy, ", "))
	}
	if s.Having != "" {
		sb.WriteString(" HAVING ")
		sb.WriteString(s.Having)
	}
	return sb.String()
}

// Clone deep-copies the spec.
func (s *QuerySpec) Clone() *QuerySpec {
	c := &QuerySpec{Having: s.Having}
	c.From = append([]FromItem{}, s.From...)
	c.Joins = append([]string{}, s.Joins...)
	c.Filters = append([]string{}, s.Filters...)
	c.GroupBy = append([]string{}, s.GroupBy...)
	c.Aggs = append([]string{}, s.Aggs...)
	return c
}

// Gen is a seeded generator of random cases.
type Gen struct {
	rnd  *rand.Rand
	seed int64
}

// NewGen returns a generator with a deterministic stream for seed.
func NewGen(seed int64) *Gen {
	return &Gen{rnd: rand.New(rand.NewSource(seed)), seed: seed}
}

// genCol tracks generation-time facts about one column.
type genCol struct {
	def     ColDef
	hasNaN  bool // float column that may contain NaN (excluded from min/max)
	sampleI []int64
	sampleF []float64
	sampleS []string
}

type genTable struct {
	def  TableDef
	cols []*genCol
}

// stringPool is the adversarial string vocabulary: empty strings,
// quote-bearing strings, LIKE metacharacters, multi-byte runes.
var stringPool = []string{
	"", "a", "ab", "abc", "zzz", "o'hara", "it''s", "%", "_", "a%b_c",
	"café", "BUILDING", "x y", "'", "  ",
}

func strLit(s string) string { return "'" + strings.ReplaceAll(s, "'", "''") + "'" }

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Candidate generates one random case plus its spec. The query may be
// outside the supported subset — callers retry on a Skip verdict.
func (g *Gen) Candidate() (*Case, *QuerySpec) {
	r := g.rnd
	star := r.Intn(10) < 6
	var tables []*genTable
	if star {
		nDims := 1 + r.Intn(2)
		for d := 0; d < nDims; d++ {
			tables = append(tables, g.genDim(d))
		}
		tables = append(tables, g.genFact(len(tables), tables))
	} else {
		tables = append(tables, g.genSingle())
	}

	c := &Case{Seed: g.seed}
	for _, t := range tables {
		c.Tables = append(c.Tables, t.def)
	}
	spec := g.genQuery(tables, star)
	c.SQL = spec.SQL()
	return c, spec
}

func (g *Gen) keyKind() string {
	switch g.rnd.Intn(4) {
	case 0:
		return "date"
	case 1:
		return "string"
	default:
		return "int"
	}
}

func (g *Gen) genDim(idx int) *genTable {
	r := g.rnd
	name := fmt.Sprintf("dim%d", idx)
	kk := g.keyKind()
	t := &genTable{}
	pk := &genCol{def: ColDef{Name: "k", Kind: kk, Role: "key", Domain: fmt.Sprintf("d%d", idx), PK: true}}
	t.cols = append(t.cols, pk)
	nAnn := 1 + r.Intn(2)
	for a := 0; a < nAnn; a++ {
		t.cols = append(t.cols, g.genAnnCol(fmt.Sprintf("a%d", a)))
	}
	n := r.Intn(9) // 0..8 rows, occasionally empty
	if r.Intn(12) == 0 {
		n = 0
	}
	g.fillTable(t, name, n, map[string]bool{"k": true})
	return t
}

func (g *Gen) genFact(idx int, dims []*genTable) *genTable {
	r := g.rnd
	name := "fact"
	t := &genTable{}
	for d, dim := range dims {
		fk := &genCol{def: ColDef{
			Name:   fmt.Sprintf("f%d", d),
			Kind:   dim.cols[0].def.Kind,
			Role:   "key",
			Domain: dim.cols[0].def.Domain,
		}}
		t.cols = append(t.cols, fk)
	}
	nAnn := 1 + r.Intn(3)
	for a := 0; a < nAnn; a++ {
		t.cols = append(t.cols, g.genAnnCol(fmt.Sprintf("m%d", a)))
	}
	n := r.Intn(36)
	if r.Intn(12) == 0 {
		n = 0
	}
	// FK cells reuse dim PK values with Zipf-style skew plus a sliver of
	// dangling keys that match no dim row.
	fkPools := make([][]string, len(dims))
	for d, dim := range dims {
		for _, row := range dim.def.Rows {
			fkPools[d] = append(fkPools[d], row[0])
		}
	}
	g.fillTableWithFKs(t, name, n, fkPools)
	return t
}

func (g *Gen) genSingle() *genTable {
	r := g.rnd
	t := &genTable{}
	nKeys := 1 + r.Intn(2)
	for k := 0; k < nKeys; k++ {
		t.cols = append(t.cols, &genCol{def: ColDef{
			Name:   fmt.Sprintf("k%d", k),
			Kind:   g.keyKind(),
			Role:   "key",
			Domain: fmt.Sprintf("s%d", k),
			PK:     k == 0 && r.Intn(3) == 0,
		}})
	}
	nAnn := 1 + r.Intn(3)
	for a := 0; a < nAnn; a++ {
		t.cols = append(t.cols, g.genAnnCol(fmt.Sprintf("a%d", a)))
	}
	n := r.Intn(30)
	if r.Intn(12) == 0 {
		n = 0
	}
	uniq := map[string]bool{}
	if t.cols[0].def.PK {
		uniq["k0"] = true
	}
	g.fillTable(t, "t0", n, uniq)
	return t
}

func (g *Gen) genAnnCol(name string) *genCol {
	r := g.rnd
	c := &genCol{}
	switch r.Intn(6) {
	case 0:
		c.def = ColDef{Name: name, Kind: "int", Role: "ann"}
	case 1:
		c.def = ColDef{Name: name, Kind: "string", Role: "ann"}
	case 2:
		c.def = ColDef{Name: name, Kind: "date", Role: "ann"}
	default:
		c.def = ColDef{Name: name, Kind: "float", Role: "ann"}
		c.hasNaN = r.Intn(3) == 0
	}
	return c
}

// cell generates one value for col, recording it in the sample pools.
func (g *Gen) cell(c *genCol) string {
	r := g.rnd
	switch c.def.Kind {
	case "int":
		var v int64
		switch r.Intn(12) {
		case 0:
			v = math.MaxInt64
		case 1:
			v = math.MaxInt64 - 1
		case 2:
			v = 0
		default:
			if c.def.Role == "ann" {
				v = int64(r.Intn(101) - 50)
			} else {
				v = int64(r.Intn(24))
			}
		}
		if c.def.Role == "ann" && (v == math.MaxInt64 || v == math.MaxInt64-1) {
			// Annotations flow through float64 aggregation; stay exact.
			v = int64(1) << 40
		}
		c.sampleI = append(c.sampleI, v)
		return strconv.FormatInt(v, 10)
	case "date":
		v := int64(9000 + r.Intn(400))
		c.sampleI = append(c.sampleI, v)
		return strconv.FormatInt(v, 10)
	case "float":
		var v float64
		switch {
		case c.hasNaN && r.Intn(8) == 0:
			v = math.NaN()
		case r.Intn(16) == 0:
			v = math.Copysign(0, -1)
		case r.Intn(16) == 0:
			v = 0
		default:
			// Quarter multiples in a small range: sums and products stay
			// exactly representable, so the oracles agree bit-for-bit.
			v = float64(r.Intn(129)-64) / 4
		}
		c.sampleF = append(c.sampleF, v)
		return fmtFloat(v)
	default:
		v := stringPool[r.Intn(len(stringPool))]
		c.sampleS = append(c.sampleS, v)
		return v
	}
}

func (g *Gen) fillTable(t *genTable, name string, n int, uniqueCols map[string]bool) {
	t.def.Name = name
	for _, c := range t.cols {
		t.def.Cols = append(t.def.Cols, c.def)
	}
	seen := map[string]map[string]bool{}
	for cn := range uniqueCols {
		seen[cn] = map[string]bool{}
	}
	for i := 0; i < n; i++ {
		row := make([]string, len(t.cols))
		ok := true
		for ci, c := range t.cols {
			cell := g.cell(c)
			if uniqueCols[c.def.Name] {
				// PK columns must be genuinely unique: retry a few times,
				// then drop the row.
				tries := 0
				for seen[c.def.Name][cell] && tries < 8 {
					cell = g.cell(c)
					tries++
				}
				if seen[c.def.Name][cell] {
					ok = false
					break
				}
				seen[c.def.Name][cell] = true
			}
			row[ci] = cell
		}
		if ok {
			t.def.Rows = append(t.def.Rows, row)
		}
	}
}

func (g *Gen) fillTableWithFKs(t *genTable, name string, n int, fkPools [][]string) {
	r := g.rnd
	t.def.Name = name
	for _, c := range t.cols {
		t.def.Cols = append(t.def.Cols, c.def)
	}
	for i := 0; i < n; i++ {
		row := make([]string, len(t.cols))
		fi := 0
		for ci, c := range t.cols {
			if c.def.Role == "key" {
				pool := fkPools[fi]
				fi++
				if len(pool) == 0 || r.Intn(10) == 0 {
					// Dangling key: joins must drop it.
					row[ci] = g.cell(c)
				} else {
					// Zipf-style reuse: low-index dim keys dominate.
					idx := int(float64(len(pool)) * math.Pow(r.Float64(), 2.5))
					if idx >= len(pool) {
						idx = len(pool) - 1
					}
					cell := pool[idx]
					row[ci] = cell
					g.recordSample(c, cell)
				}
				continue
			}
			row[ci] = g.cell(c)
		}
		t.def.Rows = append(t.def.Rows, row)
	}
}

func (g *Gen) recordSample(c *genCol, cell string) {
	switch c.def.Kind {
	case "int", "date":
		if v, err := strconv.ParseInt(cell, 10, 64); err == nil {
			c.sampleI = append(c.sampleI, v)
		}
	case "float":
		if v, err := strconv.ParseFloat(cell, 64); err == nil {
			c.sampleF = append(c.sampleF, v)
		}
	default:
		c.sampleS = append(c.sampleS, cell)
	}
}

// --- query generation ---

type boundTable struct {
	alias string
	t     *genTable
}

func (g *Gen) genQuery(tables []*genTable, star bool) *QuerySpec {
	r := g.rnd
	spec := &QuerySpec{}
	var bound []boundTable

	if star {
		fact := tables[len(tables)-1]
		nJoin := 1 + r.Intn(len(tables)-1)
		spec.From = append(spec.From, FromItem{Table: fact.def.Name, Alias: fact.def.Name})
		bound = append(bound, boundTable{fact.def.Name, fact})
		for d := 0; d < nJoin; d++ {
			dim := tables[d]
			spec.From = append(spec.From, FromItem{Table: dim.def.Name, Alias: dim.def.Name})
			bound = append(bound, boundTable{dim.def.Name, dim})
			spec.Joins = append(spec.Joins,
				fmt.Sprintf("%s.f%d = %s.k", fact.def.Name, d, dim.def.Name))
		}
		if len(tables) == 2 && r.Intn(8) == 0 {
			// Self-join of the fact on its FK domain.
			spec.From = []FromItem{
				{Table: fact.def.Name, Alias: "fa"},
				{Table: fact.def.Name, Alias: "fb"},
			}
			bound = []boundTable{{"fa", fact}, {"fb", fact}}
			spec.Joins = []string{"fa.f0 = fb.f0"}
		}
	} else {
		t := tables[0]
		spec.From = append(spec.From, FromItem{Table: t.def.Name, Alias: t.def.Name})
		bound = append(bound, boundTable{t.def.Name, t})
	}
	single := len(bound) == 1

	// Filters.
	nFilt := r.Intn(4)
	for i := 0; i < nFilt; i++ {
		if f := g.genFilter(bound); f != "" {
			spec.Filters = append(spec.Filters, f)
		}
	}

	// GROUP BY.
	nGroup := 0
	switch r.Intn(5) {
	case 1, 2:
		nGroup = 1
	case 3:
		nGroup = 2
	}
	seenG := map[string]bool{}
	for i := 0; i < nGroup; i++ {
		bt := bound[r.Intn(len(bound))]
		var cands []string
		for _, c := range bt.t.cols {
			cands = append(cands, bt.alias+"."+c.def.Name)
		}
		ref := cands[r.Intn(len(cands))]
		if !seenG[ref] {
			seenG[ref] = true
			spec.GroupBy = append(spec.GroupBy, ref)
		}
	}

	// Aggregates: 1..3.
	nAgg := 1 + r.Intn(3)
	for i := 0; i < nAgg; i++ {
		spec.Aggs = append(spec.Aggs, g.genAgg(bound, single))
	}

	// HAVING over an aggregate already in the SELECT list.
	if len(spec.GroupBy) > 0 && r.Intn(4) == 0 {
		agg := spec.Aggs[r.Intn(len(spec.Aggs))]
		agg = strings.SplitN(agg, " AS ", 2)[0]
		switch r.Intn(3) {
		case 0:
			spec.Having = fmt.Sprintf("%s > %d", agg, r.Intn(4))
		case 1:
			spec.Having = fmt.Sprintf("%s <= %d", agg, 2+r.Intn(6))
		default:
			spec.Having = fmt.Sprintf("%s <> 0", agg)
		}
	}
	return spec
}

// numericCols returns aliased refs of numeric (non-NaN unless nanOK)
// annotation columns.
func numericAnnCols(bound []boundTable, nanOK bool) []string {
	var out []string
	for _, bt := range bound {
		for _, c := range bt.t.cols {
			if c.def.Role != "ann" {
				continue
			}
			if c.def.Kind == "float" && (nanOK || !c.hasNaN) {
				out = append(out, bt.alias+"."+c.def.Name)
			}
			if c.def.Kind == "int" {
				out = append(out, bt.alias+"."+c.def.Name)
			}
		}
	}
	return out
}

func (g *Gen) genAgg(bound []boundTable, single bool) string {
	r := g.rnd
	sumCols := numericAnnCols(bound, true)
	mmCols := numericAnnCols(bound, false)

	simple := func() string {
		switch {
		case len(sumCols) == 0 || r.Intn(4) == 0:
			return "count(*)"
		default:
			col := sumCols[r.Intn(len(sumCols))]
			arg := col
			switch r.Intn(6) {
			case 0:
				if len(sumCols) > 1 {
					arg = col + " * " + sumCols[r.Intn(len(sumCols))]
				}
			case 1:
				arg = col + " + " + strconv.Itoa(r.Intn(5))
			case 2:
				// The planner rejects key attributes anywhere inside an
				// aggregate argument, so CASE predicates draw from
				// annotation columns only.
				if f := g.genFilterFrom(bound, true); f != "" {
					arg = fmt.Sprintf("CASE WHEN %s THEN %s ELSE 0 END", f, col)
				}
			}
			fn := "sum"
			if r.Intn(5) == 0 {
				fn = "avg"
			}
			return fmt.Sprintf("%s(%s)", fn, arg)
		}
	}

	if single && len(mmCols) > 0 && r.Intn(5) == 0 {
		fn := "min"
		if r.Intn(2) == 0 {
			fn = "max"
		}
		return fmt.Sprintf("%s(%s)", fn, mmCols[r.Intn(len(mmCols))])
	}
	a := simple()
	if r.Intn(6) == 0 {
		// Arithmetic over aggregates.
		b := simple()
		op := []string{"+", "-", "*"}[r.Intn(3)]
		return a + " " + op + " " + b
	}
	return a
}

// genFilter emits one single-alias predicate, or "" when no suitable
// column exists.
func (g *Gen) genFilter(bound []boundTable) string {
	return g.genFilterFrom(bound, false)
}

// genFilterFrom is genFilter with an optional restriction to
// annotation columns (required inside aggregate arguments).
func (g *Gen) genFilterFrom(bound []boundTable, annOnly bool) string {
	r := g.rnd
	bt := bound[r.Intn(len(bound))]
	var cols []*genCol
	for _, c := range bt.t.cols {
		if annOnly && c.def.Role != "ann" {
			continue
		}
		cols = append(cols, c)
	}
	if len(cols) == 0 {
		return ""
	}
	c := cols[r.Intn(len(cols))]
	ref := bt.alias + "." + c.def.Name
	base := g.genPredicate(ref, c)
	if base == "" {
		return ""
	}
	switch r.Intn(8) {
	case 0:
		return "NOT " + base
	case 1:
		c2 := cols[r.Intn(len(cols))]
		if other := g.genPredicate(bt.alias+"."+c2.def.Name, c2); other != "" {
			return "(" + base + " OR " + other + ")"
		}
	}
	return base
}

func (g *Gen) genPredicate(ref string, c *genCol) string {
	r := g.rnd
	cmp := []string{"=", "<>", "<", "<=", ">", ">="}
	switch c.def.Kind {
	case "int":
		v := int64(r.Intn(25) - 2)
		if len(c.sampleI) > 0 && r.Intn(2) == 0 {
			v = c.sampleI[r.Intn(len(c.sampleI))]
		}
		switch r.Intn(4) {
		case 0:
			lo := v - int64(r.Intn(4))
			return fmt.Sprintf("%s BETWEEN %d AND %d", ref, lo, v)
		case 1:
			vals := []string{strconv.FormatInt(v, 10)}
			for k := 0; k < 1+r.Intn(2); k++ {
				vals = append(vals, strconv.FormatInt(g.sampleOrSmallInt(c), 10))
			}
			neg := ""
			if r.Intn(3) == 0 {
				neg = "NOT "
			}
			return fmt.Sprintf("%s %sIN (%s)", ref, neg, strings.Join(vals, ", "))
		default:
			return fmt.Sprintf("%s %s %d", ref, cmp[r.Intn(len(cmp))], v)
		}
	case "date":
		v := int64(9000 + r.Intn(400))
		if len(c.sampleI) > 0 && r.Intn(2) == 0 {
			v = c.sampleI[r.Intn(len(c.sampleI))]
		}
		lit := "date '" + sqlparse.DaysToDate(int32(v)) + "'"
		if r.Intn(5) == 0 {
			return fmt.Sprintf("extract(year from %s) = %d", ref, sqlparse.DateYear(int32(v)))
		}
		if r.Intn(4) == 0 {
			hi := "date '" + sqlparse.DaysToDate(int32(v+int64(r.Intn(90)))) + "'"
			neg := ""
			if r.Intn(4) == 0 {
				neg = "NOT "
			}
			return fmt.Sprintf("%s %sBETWEEN %s AND %s", ref, neg, lit, hi)
		}
		return fmt.Sprintf("%s %s %s", ref, cmp[g.rnd.Intn(len(cmp))], lit)
	case "float":
		v := float64(r.Intn(129)-64) / 4
		if len(c.sampleF) > 0 && r.Intn(2) == 0 {
			v = c.sampleF[r.Intn(len(c.sampleF))]
			if math.IsNaN(v) || v == 0 {
				v = 0.25
			}
		}
		if r.Intn(4) == 0 {
			return fmt.Sprintf("%s BETWEEN %s AND %s", ref, fmtFloat(v-2), fmtFloat(v+2))
		}
		return fmt.Sprintf("%s %s %s", ref, cmp[r.Intn(len(cmp))], fmtFloat(v))
	case "string":
		v := stringPool[r.Intn(len(stringPool))]
		if len(c.sampleS) > 0 && r.Intn(2) == 0 {
			v = c.sampleS[r.Intn(len(c.sampleS))]
		}
		likeOK := c.def.Role == "ann" // the engine rejects LIKE on key columns
		switch r.Intn(4) {
		case 0:
			if !likeOK {
				return fmt.Sprintf("%s = %s", ref, strLit(v))
			}
			pat := v
			if len(pat) > 1 {
				pat = pat[:1] + "%"
			} else {
				pat = pat + "%"
			}
			neg := ""
			if r.Intn(3) == 0 {
				neg = "NOT "
			}
			return fmt.Sprintf("%s %sLIKE %s", ref, neg, strLit(pat))
		case 1:
			vals := []string{strLit(v)}
			for k := 0; k < 1+r.Intn(2); k++ {
				vals = append(vals, strLit(stringPool[r.Intn(len(stringPool))]))
			}
			neg := ""
			if r.Intn(3) == 0 {
				neg = "NOT "
			}
			return fmt.Sprintf("%s %sIN (%s)", ref, neg, strings.Join(vals, ", "))
		default:
			ops := []string{"=", "<>", "<", ">="}
			return fmt.Sprintf("%s %s %s", ref, ops[r.Intn(len(ops))], strLit(v))
		}
	}
	return ""
}

func (g *Gen) sampleOrSmallInt(c *genCol) int64 {
	if len(c.sampleI) > 0 && g.rnd.Intn(2) == 0 {
		return c.sampleI[g.rnd.Intn(len(c.sampleI))]
	}
	return int64(g.rnd.Intn(30) - 3)
}
