// The hybrid lane pits the two access paths of the hybrid executor
// against each other: every generated query runs once with all GHD
// nodes forced onto the WCOJ recursion and once forced onto the binary
// hash-join chain over lazy tries, and the results must be
// bit-identical — same row order, same column order, float aggregates
// equal down to the last bit (so accumulation order, duplicate
// multiplicities, and -0/NaN handling all match, not just values up to
// rounding).
package difftest

import (
	"fmt"

	"math"

	"repro/internal/core"
	"repro/internal/costopt"
	"repro/internal/exec"
)

// RunHybridLane executes the case's SQL under both forced access paths
// and compares bitwise.
func RunHybridLane(c *Case) Outcome {
	eng, err := c.BuildEngine()
	if err != nil {
		return Outcome{Verdict: Skip, Detail: err.Error()}
	}
	rw, err := eng.QueryWith(c.SQL, core.QueryOptions{ForcePath: costopt.PathWCOJ})
	if err != nil {
		if planReject(err) {
			return Outcome{Verdict: Skip, Detail: err.Error()}
		}
		return disagree("forced-wcoj run failed: %v", err)
	}
	rb, err := eng.QueryWith(c.SQL, core.QueryOptions{ForcePath: costopt.PathBinary})
	if err != nil {
		return disagree("forced-binary run failed after wcoj succeeded: %v", err)
	}
	if detail := diffBitwise(rw, rb); detail != "" {
		return disagree("wcoj vs binary: %s", detail)
	}
	// The cost-based default must agree too — whatever mix the
	// classifier picks per node, the answer may not move.
	rd, err := eng.Query(c.SQL)
	if err != nil {
		return disagree("default run failed after forced runs succeeded: %v", err)
	}
	if detail := diffBitwise(rw, rd); detail != "" {
		return disagree("wcoj vs cost-based hybrid: %s", detail)
	}
	return Outcome{Verdict: Agree}
}

// diffBitwise reports the first bitwise difference between two results,
// or "" when identical. Floats compare by bit pattern: NaN payloads and
// signed zeros must match exactly.
func diffBitwise(a, b *exec.Result) string {
	if a.NumRows != b.NumRows {
		return fmt.Sprintf("row count %d vs %d", a.NumRows, b.NumRows)
	}
	if len(a.Cols) != len(b.Cols) {
		return fmt.Sprintf("column count %d vs %d", len(a.Cols), len(b.Cols))
	}
	for ci := range a.Cols {
		ca, cb := a.Cols[ci], b.Cols[ci]
		if ca.Name != cb.Name || ca.Kind != cb.Kind {
			return fmt.Sprintf("column %d header %s/%d vs %s/%d", ci, ca.Name, ca.Kind, cb.Name, cb.Kind)
		}
		for ri := 0; ri < a.NumRows; ri++ {
			switch ca.Kind {
			case exec.KindInt:
				if ca.I64[ri] != cb.I64[ri] {
					return fmt.Sprintf("col %s row %d: %d vs %d", ca.Name, ri, ca.I64[ri], cb.I64[ri])
				}
			case exec.KindFloat:
				if math.Float64bits(ca.F64[ri]) != math.Float64bits(cb.F64[ri]) {
					return fmt.Sprintf("col %s row %d: %v (0x%x) vs %v (0x%x)", ca.Name, ri,
						ca.F64[ri], math.Float64bits(ca.F64[ri]), cb.F64[ri], math.Float64bits(cb.F64[ri]))
				}
			case exec.KindString:
				if ca.Str[ri] != cb.Str[ri] {
					return fmt.Sprintf("col %s row %d: %q vs %q", ca.Name, ri, ca.Str[ri], cb.Str[ri])
				}
			}
		}
	}
	return ""
}

// GenHybridCase reuses the refeval query/dataset generator — the widest
// SQL surface the suite has — retagged for the hybrid lane.
func (g *Gen) GenHybridCase() (*Case, *QuerySpec) {
	c, spec := g.Candidate()
	c.Lane = "hybrid"
	return c, spec
}
