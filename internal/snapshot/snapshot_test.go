package snapshot

import (
	"math"
	"os"
	"testing"

	"repro/internal/storage"
)

// buildCatalog makes a two-table catalog sharing a join domain, with
// string and float annotations (including NaN), frozen, then extended
// post-freeze so domain dicts carry unsorted tails and one table keeps
// an unfolded delta tail.
func buildCatalog(t *testing.T) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	orders, err := cat.Create(storage.Schema{Name: "orders", Cols: []storage.ColumnDef{
		{Name: "id", Kind: storage.Int64, Role: storage.Key, PK: true},
		{Name: "cust", Kind: storage.Int64, Role: storage.Key, Domain: "custkey"},
		{Name: "total", Kind: storage.Float64, Role: storage.Annotation},
		{Name: "status", Kind: storage.String, Role: storage.Annotation},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cust, err := cat.Create(storage.Schema{Name: "cust", Cols: []storage.ColumnDef{
		{Name: "ck", Kind: storage.Int64, Role: storage.Key, Domain: "custkey", PK: true},
		{Name: "name", Kind: storage.String, Role: storage.Annotation},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := cust.Append(int64(i), "c"+string(rune('a'+i%5))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		total := float64(i) * 1.5
		if i%7 == 0 {
			total = math.NaN()
		}
		if err := orders.Append(int64(i), int64(i%20), total, "S"+string(rune('0'+i%3))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.Freeze(); err != nil {
		t.Fatal(err)
	}
	// Post-freeze: new custkey values extend the shared domain tail.
	for i := 50; i < 60; i++ {
		if err := orders.Append(int64(i), int64(i), 2.5, "NEW"); err != nil {
			t.Fatal(err)
		}
	}
	cat.Snapshot() // fold the above into a generation
	// Unfolded delta tail.
	if err := orders.Append(int64(99), int64(99), math.Inf(1), "TAIL"); err != nil {
		t.Fatal(err)
	}
	return cat
}

func tableRows(t *testing.T, cat *storage.Catalog, name string) int {
	t.Helper()
	return cat.Table(name).TotalRows()
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cat := buildCatalog(t)
	cap, err := cat.CaptureForSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	path, err := Write(dir, cap, []string{"b1", "b2"})
	if err != nil {
		t.Fatal(err)
	}
	l, invalid, err := Load(dir)
	if err != nil || invalid != 0 || l == nil {
		t.Fatalf("Load: %v invalid=%d l=%v", err, invalid, l)
	}
	if l.Path != path {
		t.Fatalf("loaded %s, wrote %s", l.Path, path)
	}
	if len(l.Manifest.BatchIDs) != 2 || l.Manifest.BatchIDs[0] != "b1" {
		t.Fatalf("batch ids %v", l.Manifest.BatchIDs)
	}
	rcat, err := BuildCatalog(l)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tableRows(t, rcat, "orders"), tableRows(t, cat, "orders"); got != want {
		t.Fatalf("orders rows %d, want %d", got, want)
	}
	if got, want := tableRows(t, rcat, "cust"), tableRows(t, cat, "cust"); got != want {
		t.Fatalf("cust rows %d, want %d", got, want)
	}

	// Codes restored bit-identically: the snapshot's generation codes
	// must equal the restored handle's codes prefix-for-prefix,
	// including domain-dict tail codes minted post-freeze.
	for _, tc := range cap.Tables {
		rt := rcat.Table(tc.Name)
		for i, col := range tc.Gen.Cols {
			if col.Def.Role != storage.Key {
				continue
			}
			want := col.KeyCodes()
			got := rt.Cols[i].KeyCodes()
			if len(got) != len(want) {
				t.Fatalf("%s.%s: %d codes, want %d", tc.Name, col.Def.Name, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%s.%s code[%d] = %d, want %d", tc.Name, col.Def.Name, j, got[j], want[j])
				}
			}
		}
	}

	// Shared-domain dictionary survives with its tail: decoding the
	// restored codes yields the original values.
	d := rcat.Domain("custkey")
	if d == nil {
		t.Fatal("custkey domain missing after restore")
	}
	if d.TailLen() == 0 {
		t.Fatal("custkey tail lost in restore")
	}
	for _, v := range []int64{0, 19, 50, 59} {
		code, ok := d.EncodeInt(v)
		if !ok || d.DecodeInt(code) != v {
			t.Fatalf("custkey %d does not round-trip (ok=%v)", v, ok)
		}
	}

	// NaN annotation survives by bits.
	of := rcat.Table("orders").Col("total").AnnFloats()
	if !math.IsNaN(of[0]) || of[1] != 1.5 {
		t.Fatalf("annotation floats corrupted: %v %v", of[0], of[1])
	}
}

func TestSnapshotCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	cat := buildCatalog(t)
	cap, err := cat.CaptureForSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Write(dir, cap, nil); err != nil {
		t.Fatal(err)
	}
	// Second snapshot at a later epoch, then corrupt it.
	cap.Epoch++
	path2, err := Write(dir, cap, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path2, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l, invalid, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if invalid != 1 || l == nil || l.Manifest.Epoch != cap.Epoch-1 {
		t.Fatalf("invalid=%d l=%+v", invalid, l)
	}
	if _, err := BuildCatalog(l); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotNone(t *testing.T) {
	l, invalid, err := Load(t.TempDir())
	if l != nil || invalid != 0 || err != nil {
		t.Fatalf("empty dir: %v %d %v", l, invalid, err)
	}
}

func TestCatalogManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	schemas := []storage.Schema{
		{Name: "t0", Cols: []storage.ColumnDef{
			{Name: "k", Kind: storage.Int64, Role: storage.Key, Domain: "d0", PK: true},
			{Name: "v", Kind: storage.Float64, Role: storage.Annotation},
		}},
	}
	if err := WriteCatalogManifest(dir, schemas); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCatalogManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "t0" || got[0].Cols[0].Domain != "d0" || !got[0].Cols[0].PK {
		t.Fatalf("manifest round trip: %+v", got)
	}
	// Absent and corrupt manifests are both "no manifest".
	if got, err := LoadCatalogManifest(t.TempDir()); got != nil || err != nil {
		t.Fatalf("absent: %v %v", got, err)
	}
	if err := os.WriteFile(dir+"/catalog.json", []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := LoadCatalogManifest(dir); got != nil || err != nil {
		t.Fatalf("corrupt: %v %v", got, err)
	}
}
