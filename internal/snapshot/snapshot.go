// Package snapshot persists the catalog to disk and restores it on
// startup — the checkpoint half of the durability story (internal/wal
// is the log half). A snapshot file holds everything needed to rebuild
// the catalog bit-identically: schemas, per-join-domain dictionaries
// (ordered prefix AND unsorted tail, in original order, so restored
// codes equal pre-crash codes), per-column string-annotation
// dictionaries, the raw columnar arrays of every table's live
// generation, and the not-yet-folded delta tail rows.
//
// Atomicity: the file is written to a .tmp sibling, fsynced, renamed
// into place, and the directory fsynced — a crash mid-write leaves the
// previous snapshot untouched. Every section carries a CRC32C;
// recovery picks the newest snapshot whose every section validates and
// silently skips corrupt ones (counting them) rather than refusing to
// start.
//
// The per-level columnar layout (arrays section-by-section, levels
// loadable in isolation) is deliberately the format the ROADMAP's
// out-of-core pager wants to mmap later.
package snapshot

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dict"
	"repro/internal/faultinject"
	"repro/internal/storage"
	"repro/internal/wal"
)

const (
	fileMagic = "LHSNAP01"
	// MaxSectionBytes bounds one section; a larger length prefix is
	// corruption, not an allocation request.
	MaxSectionBytes = int64(1) << 40
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// TableMeta describes one table inside the manifest.
type TableMeta struct {
	Name      string         `json:"name"`
	Schema    storage.Schema `json:"schema"`
	Rows      int            `json:"rows"`
	NTail     int            `json:"n_tail"`
	WALCutoff uint64         `json:"wal_cutoff"`
}

// Manifest is the JSON header section: everything except bulk data.
type Manifest struct {
	Epoch    uint64      `json:"epoch"`
	Tables   []TableMeta `json:"tables"`
	Domains  []string    `json:"domains"`
	AnnDicts []string    `json:"ann_dicts"` // "table.column" names
	BatchIDs []string    `json:"batch_ids,omitempty"`
}

// Path returns the snapshot filename for an epoch.
func Path(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snapshot-%d.lhsnap", epoch))
}

// ---- binary value encoding -------------------------------------------------

type enc struct{ buf []byte }

func (e *enc) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *enc) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *enc) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *enc) str(v string) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(len(v)))
	e.buf = append(e.buf, v...)
}

type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: section data overrun at offset %d", d.off)
	}
}
func (d *dec) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}
func (d *dec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *dec) count() int {
	n := d.u64()
	if d.err == nil && (n > uint64(len(d.buf)-d.off)) && n > uint64(MaxSectionBytes) {
		d.fail()
	}
	return int(n)
}
func (d *dec) str() string {
	n := d.count()
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail()
		return ""
	}
	v := string(d.buf[d.off : d.off+n])
	d.off += n
	return v
}

func encodeDict(s dict.Snapshot) []byte {
	var e enc
	e.u8(uint8(s.Kind))
	e.u8(b2u(s.Identity))
	e.u8(b2u(s.HasNaN))
	e.u64(uint64(s.Base))
	e.u64(uint64(s.N))
	e.u64(uint64(len(s.Ints)))
	for _, v := range s.Ints {
		e.u64(uint64(v))
	}
	e.u64(uint64(len(s.Floats)))
	for _, v := range s.Floats {
		e.f64(v)
	}
	e.u64(uint64(len(s.Strs)))
	for _, v := range s.Strs {
		e.str(v)
	}
	e.u64(uint64(len(s.TailInts)))
	for _, v := range s.TailInts {
		e.u64(uint64(v))
	}
	e.u64(uint64(len(s.TailStrs)))
	for _, v := range s.TailStrs {
		e.str(v)
	}
	return e.buf
}

func decodeDict(data []byte) (*dict.Dictionary, error) {
	d := &dec{buf: data}
	var s dict.Snapshot
	s.Kind = dict.Kind(d.u8())
	s.Identity = d.u8() != 0
	s.HasNaN = d.u8() != 0
	s.Base = int(d.u64())
	s.N = int(d.u64())
	if n := d.count(); d.err == nil && n > 0 {
		s.Ints = make([]int64, n)
		for i := range s.Ints {
			s.Ints[i] = int64(d.u64())
		}
	}
	if n := d.count(); d.err == nil && n > 0 {
		s.Floats = make([]float64, n)
		for i := range s.Floats {
			s.Floats[i] = d.f64()
		}
	}
	if n := d.count(); d.err == nil && n > 0 {
		s.Strs = make([]string, n)
		for i := range s.Strs {
			s.Strs[i] = d.str()
		}
	}
	if n := d.count(); d.err == nil && n > 0 {
		s.TailInts = make([]int64, n)
		for i := range s.TailInts {
			s.TailInts[i] = int64(d.u64())
		}
	}
	if n := d.count(); d.err == nil && n > 0 {
		s.TailStrs = make([]string, n)
		for i := range s.TailStrs {
			s.TailStrs[i] = d.str()
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return dict.Restore(s)
}

func b2u(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

const (
	colInts uint8 = iota
	colFloats
	colStrs
)

func encodeColumn(col *storage.Column) []byte {
	var e enc
	switch {
	case col.Ints != nil || (col.Floats == nil && col.Strs == nil &&
		(col.Def.Kind == storage.Int64 || col.Def.Kind == storage.Date)):
		e.u8(colInts)
		e.u64(uint64(len(col.Ints)))
		for _, v := range col.Ints {
			e.u64(uint64(v))
		}
	case col.Floats != nil || col.Def.Kind == storage.Float64:
		e.u8(colFloats)
		e.u64(uint64(len(col.Floats)))
		for _, v := range col.Floats {
			e.f64(v)
		}
	default:
		e.u8(colStrs)
		e.u64(uint64(len(col.Strs)))
		for _, v := range col.Strs {
			e.str(v)
		}
	}
	return e.buf
}

func decodeColumn(data []byte, rows int) (interface{}, error) {
	d := &dec{buf: data}
	tag := d.u8()
	n := d.count()
	if d.err == nil && n != rows {
		return nil, fmt.Errorf("snapshot: column has %d values, manifest says %d rows", n, rows)
	}
	switch tag {
	case colInts:
		out := make([]int64, n)
		for i := range out {
			out[i] = int64(d.u64())
		}
		if d.err != nil {
			return nil, d.err
		}
		return out, nil
	case colFloats:
		out := make([]float64, n)
		for i := range out {
			out[i] = d.f64()
		}
		if d.err != nil {
			return nil, d.err
		}
		return out, nil
	case colStrs:
		out := make([]string, n)
		for i := range out {
			out[i] = d.str()
		}
		if d.err != nil {
			return nil, d.err
		}
		return out, nil
	}
	return nil, fmt.Errorf("snapshot: unknown column tag %d", tag)
}

func encodeTail(schema storage.Schema, rows [][]interface{}) []byte {
	var e enc
	e.u64(uint64(len(rows)))
	for _, r := range rows {
		for i, cd := range schema.Cols {
			switch cd.Kind {
			case storage.Int64, storage.Date:
				e.u64(uint64(r[i].(int64)))
			case storage.Float64:
				e.f64(r[i].(float64))
			case storage.String:
				e.str(r[i].(string))
			}
		}
	}
	return e.buf
}

func decodeTail(data []byte, schema storage.Schema, want int) ([][]interface{}, error) {
	d := &dec{buf: data}
	n := d.count()
	if d.err == nil && n != want {
		return nil, fmt.Errorf("snapshot: tail has %d rows, manifest says %d", n, want)
	}
	rows := make([][]interface{}, 0, n)
	for r := 0; r < n && d.err == nil; r++ {
		row := make([]interface{}, len(schema.Cols))
		for i, cd := range schema.Cols {
			switch cd.Kind {
			case storage.Int64, storage.Date:
				row[i] = int64(d.u64())
			case storage.Float64:
				row[i] = d.f64()
			case storage.String:
				row[i] = d.str()
			}
		}
		rows = append(rows, row)
	}
	if d.err != nil {
		return nil, d.err
	}
	return rows, nil
}

// ---- file I/O --------------------------------------------------------------

// writeSection appends one length-prefixed, CRC'd section.
func writeSection(f *os.File, payload []byte) error {
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint64(hdr, uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.Checksum(payload, castagnoli))
	if _, err := f.Write(hdr); err != nil {
		return err
	}
	_, err := f.Write(payload)
	return err
}

// sectionReader walks the section stream of a loaded file.
type sectionReader struct {
	data []byte
	off  int
}

func (r *sectionReader) next() ([]byte, error) {
	if r.off+12 > len(r.data) {
		return nil, fmt.Errorf("snapshot: truncated at section header (offset %d)", r.off)
	}
	n := int64(binary.LittleEndian.Uint64(r.data[r.off:]))
	crc := binary.LittleEndian.Uint32(r.data[r.off+8:])
	if n < 0 || n > MaxSectionBytes || r.off+12+int(n) > len(r.data) {
		return nil, fmt.Errorf("snapshot: truncated section (offset %d, len %d)", r.off, n)
	}
	payload := r.data[r.off+12 : r.off+12+int(n)]
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, fmt.Errorf("snapshot: section checksum mismatch at offset %d", r.off)
	}
	r.off += 12 + int(n)
	return payload, nil
}

// Write persists a capture atomically and returns the snapshot path.
// batchIDs is the idempotency dedup set (oldest first) to carry across
// restarts. The previous snapshot file is kept as a recovery fallback;
// anything older is pruned.
func Write(dir string, cap *storage.Capture, batchIDs []string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	m := Manifest{Epoch: cap.Epoch, BatchIDs: batchIDs}
	for dn := range cap.Domains {
		m.Domains = append(m.Domains, dn)
	}
	sort.Strings(m.Domains)
	for _, tc := range cap.Tables {
		m.Tables = append(m.Tables, TableMeta{
			Name: tc.Name, Schema: tc.Schema, Rows: tc.Gen.NumRows,
			NTail: len(tc.TailRows), WALCutoff: tc.WALCutoff,
		})
		for _, cd := range tc.Schema.Cols {
			if cd.Role == storage.Annotation && cd.Kind == storage.String {
				m.AnnDicts = append(m.AnnDicts, tc.Name+"."+cd.Name)
			}
		}
	}
	mjson, err := json.Marshal(&m)
	if err != nil {
		return "", err
	}

	final := Path(dir, cap.Epoch)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	werr := func() error {
		if err := faultinject.Err(wal.PointSnapshotWrite); err != nil {
			return err
		}
		if _, err := f.Write([]byte(fileMagic)); err != nil {
			return err
		}
		if err := writeSection(f, mjson); err != nil {
			return err
		}
		for _, dn := range m.Domains {
			if err := writeSection(f, encodeDict(cap.Domains[dn].Export())); err != nil {
				return err
			}
		}
		annByName := map[string]*dict.Dictionary{}
		for _, tc := range cap.Tables {
			for _, col := range tc.Gen.Cols {
				if col.Def.Role == storage.Annotation && col.Def.Kind == storage.String {
					annByName[tc.Name+"."+col.Def.Name] = col.Dict()
				}
			}
		}
		for _, name := range m.AnnDicts {
			d := annByName[name]
			if d == nil {
				// Capture of a never-frozen column dict cannot happen (the
				// catalog is frozen), but guard anyway with an empty dict.
				d = dict.NewBuilder(dict.String).Build()
			}
			if err := writeSection(f, encodeDict(d.Export())); err != nil {
				return err
			}
		}
		for _, tc := range cap.Tables {
			for _, col := range tc.Gen.Cols {
				if err := writeSection(f, encodeColumn(col)); err != nil {
					return err
				}
			}
			if err := writeSection(f, encodeTail(tc.Schema, tc.TailRows)); err != nil {
				return err
			}
		}
		return f.Sync()
	}()
	if werr != nil {
		cerr := f.Close()
		_ = cerr // the write error is the one worth reporting
		if rerr := os.Remove(tmp); rerr != nil && !os.IsNotExist(rerr) {
			return "", fmt.Errorf("%v (and removing tmp: %v)", werr, rerr)
		}
		return "", werr
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		return "", err
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	if err := prune(dir, cap.Epoch); err != nil {
		return "", err
	}
	return final, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// listSnapshots returns snapshot files newest-epoch first.
func listSnapshots(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var epochs []uint64
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, "snapshot-") || !strings.HasSuffix(name, ".lhsnap") {
			continue
		}
		e, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snapshot-"), ".lhsnap"), 10, 64)
		if perr != nil {
			continue
		}
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] > epochs[j] })
	return epochs, nil
}

// prune keeps the snapshot for epoch and its immediate predecessor
// (the fallback if the new file later proves unreadable) and removes
// anything older, plus any stale .tmp files.
func prune(dir string, epoch uint64) error {
	epochs, err := listSnapshots(dir)
	if err != nil {
		return err
	}
	kept := 0
	for _, e := range epochs {
		if e > epoch {
			continue
		}
		kept++
		if kept <= 2 {
			continue
		}
		if err := os.Remove(Path(dir, e)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, ent := range ents {
		if strings.HasSuffix(ent.Name(), ".lhsnap.tmp") && ent.Name() != filepath.Base(Path(dir, epoch))+".tmp" {
			if err := os.Remove(filepath.Join(dir, ent.Name())); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return nil
}

// LoadedTable is one table restored from a snapshot.
type LoadedTable struct {
	Meta     TableMeta
	Cols     map[string]interface{} // column name → []int64 / []float64 / []string
	TailRows [][]interface{}
}

// Loaded is a fully validated snapshot ready to rebuild a catalog.
type Loaded struct {
	Path     string
	Manifest Manifest
	Domains  map[string]*dict.Dictionary
	AnnDicts map[string]*dict.Dictionary
	Tables   []LoadedTable
}

// load reads and fully validates one snapshot file.
func load(path string) (*Loaded, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(fileMagic) || string(data[:len(fileMagic)]) != fileMagic {
		return nil, fmt.Errorf("snapshot: %s: bad magic", path)
	}
	r := &sectionReader{data: data, off: len(fileMagic)}
	mjson, err := r.next()
	if err != nil {
		return nil, err
	}
	l := &Loaded{Path: path, Domains: map[string]*dict.Dictionary{}, AnnDicts: map[string]*dict.Dictionary{}}
	if err := json.Unmarshal(mjson, &l.Manifest); err != nil {
		return nil, fmt.Errorf("snapshot: %s: manifest: %v", path, err)
	}
	for _, dn := range l.Manifest.Domains {
		sec, err := r.next()
		if err != nil {
			return nil, err
		}
		d, err := decodeDict(sec)
		if err != nil {
			return nil, fmt.Errorf("snapshot: domain %q: %v", dn, err)
		}
		l.Domains[dn] = d
	}
	for _, name := range l.Manifest.AnnDicts {
		sec, err := r.next()
		if err != nil {
			return nil, err
		}
		d, err := decodeDict(sec)
		if err != nil {
			return nil, fmt.Errorf("snapshot: annotation dict %q: %v", name, err)
		}
		l.AnnDicts[name] = d
	}
	for _, tm := range l.Manifest.Tables {
		lt := LoadedTable{Meta: tm, Cols: map[string]interface{}{}}
		for _, cd := range tm.Schema.Cols {
			sec, err := r.next()
			if err != nil {
				return nil, err
			}
			arr, err := decodeColumn(sec, tm.Rows)
			if err != nil {
				return nil, fmt.Errorf("snapshot: %s.%s: %v", tm.Name, cd.Name, err)
			}
			lt.Cols[cd.Name] = arr
		}
		sec, err := r.next()
		if err != nil {
			return nil, err
		}
		lt.TailRows, err = decodeTail(sec, tm.Schema, tm.NTail)
		if err != nil {
			return nil, fmt.Errorf("snapshot: %s tail: %v", tm.Name, err)
		}
		l.Tables = append(l.Tables, lt)
	}
	return l, nil
}

// Load finds the newest snapshot in dir whose every section validates.
// Corrupt or torn snapshots are skipped (invalid counts them); no
// snapshot at all returns (nil, 0, nil). Recovery's contract is to
// come up: only directory-level I/O failures are errors.
func Load(dir string) (l *Loaded, invalid int, err error) {
	epochs, err := listSnapshots(dir)
	if err != nil {
		return nil, 0, err
	}
	for _, e := range epochs {
		loaded, lerr := load(Path(dir, e))
		if lerr != nil {
			invalid++
			continue
		}
		return loaded, invalid, nil
	}
	return nil, invalid, nil
}

// BuildCatalog rebuilds a frozen catalog from the loaded snapshot.
// Restored dictionaries reproduce the exact pre-snapshot codes; if
// they prove inconsistent with the column data (a cross-section
// corruption the per-section CRCs cannot see), it falls back to a
// fresh Freeze — different codes, same query results. Delta tail rows
// are re-appended after the freeze, landing in the delta store exactly
// where they lived before the snapshot.
func BuildCatalog(l *Loaded) (*storage.Catalog, error) {
	build := func(withDicts bool) (*storage.Catalog, error) {
		cat := storage.NewCatalog()
		for _, lt := range l.Tables {
			t, err := cat.Create(lt.Meta.Schema)
			if err != nil {
				return nil, err
			}
			if err := t.SetColumnData(lt.Cols); err != nil {
				return nil, err
			}
		}
		var err error
		if withDicts {
			err = cat.FreezeWith(l.Domains, l.AnnDicts)
		} else {
			err = cat.Freeze()
		}
		if err != nil {
			return nil, err
		}
		for _, lt := range l.Tables {
			if len(lt.TailRows) == 0 {
				continue
			}
			if err := cat.Table(lt.Meta.Name).AppendBatch(lt.TailRows); err != nil {
				return nil, err
			}
		}
		cat.RestoreEpoch(l.Manifest.Epoch)
		return cat, nil
	}
	cat, err := build(true)
	if err != nil {
		cat, err = build(false)
	}
	return cat, err
}

// ---- schema manifest (recovery without a snapshot) -------------------------

// catalogManifest is the catalog.json payload: the schemas needed to
// decode WAL records when no snapshot exists yet.
type catalogManifest struct {
	Tables []storage.Schema `json:"tables"`
}

// WriteCatalogManifest atomically rewrites catalog.json with the
// current table schemas (creation order).
func WriteCatalogManifest(dir string, schemas []storage.Schema) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(&catalogManifest{Tables: schemas}, "", "  ")
	if err != nil {
		return err
	}
	final := filepath.Join(dir, "catalog.json")
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		cerr := f.Close()
		_ = cerr
		return err
	}
	if err := f.Sync(); err != nil {
		cerr := f.Close()
		_ = cerr
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return syncDir(dir)
}

// LoadCatalogManifest reads catalog.json; (nil, nil) when absent or
// unparseable (recovery treats a corrupt manifest as no manifest).
func LoadCatalogManifest(dir string) ([]storage.Schema, error) {
	data, err := os.ReadFile(filepath.Join(dir, "catalog.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var m catalogManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, nil
	}
	return m.Tables, nil
}
