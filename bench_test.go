// Benchmarks regenerating every table and figure of the paper at
// CI-sized scales (the cmd/lhbench harness runs the same experiments at
// larger scales and prints paper-style tables):
//
//	Table II (BI half)  — BenchmarkTableII_TPCH_*
//	Table II (LA half)  — BenchmarkTableII_LA_*
//	Table III           — BenchmarkTableIII_*   (ablation toggles)
//	Table IV            — BenchmarkTableIV_*    (COO→CSR conversion vs SMV)
//	Figure 5a           — BenchmarkFig5a_*      (intersection layouts)
//	Figure 5b           — BenchmarkFig5b_*      (SpGEMM attribute orders)
//	Figure 5c           — BenchmarkFig5c_*      (Q5 attribute orders)
//	Figure 6            — BenchmarkFig6_*       (voter pipelines)
//	§IV-B heuristics    — BenchmarkGHDHeuristics_Q5
package levelheaded_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/blas"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/lagen"
	"repro/internal/pairwise"
	"repro/internal/set"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/voter"
)

// ---- shared fixtures (built once) ------------------------------------

const benchSF = 0.01

var (
	tpchOnce sync.Once
	tpchEng  *core.Engine
)

func tpchFixture(b *testing.B) *core.Engine {
	b.Helper()
	tpchOnce.Do(func() {
		tpchEng = core.New()
		if _, err := tpch.Populate(tpchEng.Catalog(), benchSF, 2026); err != nil {
			panic(err)
		}
		if err := tpchEng.Freeze(); err != nil {
			panic(err)
		}
		// Warm the trie cache: the paper's measurements exclude index
		// creation.
		for _, name := range tpch.QueryNames {
			if _, err := tpchEng.Query(tpch.Queries[name]); err != nil {
				panic(err)
			}
		}
	})
	return tpchEng
}

var (
	sparseOnce sync.Once
	sparseEng  *core.Engine
	sparseCSR  *blas.CSR
	sparseX    []float64
	sparseN    int
)

func sparseFixture(b *testing.B) {
	b.Helper()
	sparseOnce.Do(func() {
		spec, err := lagen.Profile("harbor", 0.15) // n = 1200
		if err != nil {
			panic(err)
		}
		sparseN = spec.N
		sparseEng = core.New()
		if _, err := lagen.LoadSparse(sparseEng.Catalog(), spec, 7); err != nil {
			panic(err)
		}
		if err := sparseEng.Freeze(); err != nil {
			panic(err)
		}
		m := sparseEng.Catalog().Table("matrix")
		i32 := make([]int32, m.NumRows)
		j32 := make([]int32, m.NumRows)
		for k := 0; k < m.NumRows; k++ {
			i32[k] = int32(m.Col("i").Ints[k])
			j32[k] = int32(m.Col("j").Ints[k])
		}
		coo, _ := blas.NewCOO(spec.N, spec.N, i32, j32, m.Col("v").Floats)
		sparseCSR = blas.CompressCOO(coo)
		sparseX = sparseEng.Catalog().Table("vec").Col("x").Floats
		if _, err := sparseEng.Query(lagen.SMVQuery); err != nil {
			panic(err)
		}
		if _, err := sparseEng.Query(lagen.SMMQuery); err != nil {
			panic(err)
		}
	})
}

var (
	denseOnce sync.Once
	denseEng  *core.Engine
	denseA    []float64
	denseX    []float64
)

const denseN = 192 // stands in for the paper's 8192–16384

func denseFixture(b *testing.B) {
	b.Helper()
	denseOnce.Do(func() {
		denseEng = core.New()
		if err := lagen.LoadDense(denseEng.Catalog(), denseN, 9); err != nil {
			panic(err)
		}
		if err := denseEng.Freeze(); err != nil {
			panic(err)
		}
		var err error
		denseA, denseX, err = lagen.DenseBuffer(denseEng.Catalog(), denseN)
		if err != nil {
			panic(err)
		}
		if _, err := denseEng.Query(lagen.SMMQuery); err != nil {
			panic(err)
		}
	})
}

// ---- Table II: business intelligence ---------------------------------

func BenchmarkTableII_TPCH(b *testing.B) {
	eng := tpchFixture(b)
	pw := pairwise.New(eng.Catalog())
	cs := colstore.New(eng.Catalog())
	for _, name := range tpch.QueryNames {
		sql := tpch.Queries[name]
		b.Run(name+"/levelheaded", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/pairwise_hyper", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pw.RunTPCH(name); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/colstore_monet", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cs.RunTPCH(name); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Table II: linear algebra -----------------------------------------

func BenchmarkTableII_LA_SMV(b *testing.B) {
	sparseFixture(b)
	pw := pairwise.New(sparseEng.Catalog())
	cs := colstore.New(sparseEng.Catalog())
	b.Run("levelheaded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sparseEng.Query(lagen.SMVQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("blas_mkl", func(b *testing.B) {
		y := make([]float64, sparseN)
		for i := 0; i < b.N; i++ {
			blas.SpMV(sparseCSR, sparseX, y)
		}
	})
	b.Run("pairwise_hyper", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pw.SpMV("matrix", "vec"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("colstore_monet", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cs.SpMV("matrix", "vec"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTableII_LA_SMM(b *testing.B) {
	sparseFixture(b)
	pw := pairwise.New(sparseEng.Catalog())
	b.Run("levelheaded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sparseEng.Query(lagen.SMMQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("blas_mkl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			blas.SpGEMM(sparseCSR, sparseCSR)
		}
	})
	b.Run("pairwise_hyper", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := pw.SpMM("matrix", "matrix", 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTableII_LA_DMV(b *testing.B) {
	denseFixture(b)
	sql := lagen.SMVQuery
	b.Run("levelheaded_blas_dispatch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := denseEng.Query(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("blas_mkl", func(b *testing.B) {
		y := make([]float64, denseN)
		for i := 0; i < b.N; i++ {
			blas.Gemv(denseN, denseN, denseA, denseX, y)
		}
	})
}

func BenchmarkTableII_LA_DMM(b *testing.B) {
	denseFixture(b)
	b.Run("levelheaded_blas_dispatch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := denseEng.Query(lagen.SMMQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("blas_mkl", func(b *testing.B) {
		c := make([]float64, denseN*denseN)
		for i := 0; i < b.N; i++ {
			for j := range c {
				c[j] = 0
			}
			blas.GemmNT(denseN, denseN, denseN, denseA, denseA, c)
		}
	})
}

// ---- Table III: ablations ----------------------------------------------

func BenchmarkTableIII_AttrElim(b *testing.B) {
	for _, name := range []string{"q1", "q5", "q6"} {
		sql := tpch.Queries[name]
		for _, mode := range []struct {
			label string
			opt   core.Option
		}{
			{"with", core.WithAttributeElimination(true)},
			{"without", core.WithAttributeElimination(false)},
		} {
			eng := core.New(mode.opt)
			if _, err := tpch.Populate(eng.Catalog(), benchSF, 2026); err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Query(sql); err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%s", name, mode.label), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := eng.Query(sql); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkTableIII_AttrElim_DMM(b *testing.B) {
	denseFixture(b)
	b.Run("with_blas", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := denseEng.Query(lagen.SMMQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Without attribute elimination there is no BLAS-compatible buffer:
	// dense MM runs as a pure aggregate-join (the 500x row of Table III).
	eng := core.New(core.WithBLAS(false))
	if err := lagen.LoadDense(eng.Catalog(), denseN, 9); err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Query(lagen.SMMQuery); err != nil {
		b.Fatal(err)
	}
	b.Run("without_wcoj", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(lagen.SMMQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTableIII_AttrOrder(b *testing.B) {
	eng := tpchFixture(b)
	for _, name := range []string{"q3", "q5", "q9", "q10"} {
		sql := tpch.Queries[name]
		b.Run(name+"/best", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/worst", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.QueryWith(sql, core.QueryOptions{WorstOrder: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Table IV: conversion cost -----------------------------------------

func BenchmarkTableIV_Conversion(b *testing.B) {
	sparseFixture(b)
	cs := colstore.New(sparseEng.Catalog())
	b.Run("coo_to_csr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cs.ConvertToCSR("matrix", sparseN, sparseN); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("levelheaded_smv", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sparseEng.Query(lagen.SMVQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Figure 5a: intersection layouts ------------------------------------

func fig5aSets(card int, density float64) (uintA, uintB, bsA, bsB set.Set) {
	span := uint32(float64(card) / density)
	mk := func(offset uint32) []uint32 {
		vals := make([]uint32, 0, card)
		step := span / uint32(card)
		if step == 0 {
			step = 1
		}
		for v := offset; len(vals) < card; v += step {
			vals = append(vals, v)
		}
		return vals
	}
	a, bvals := mk(0), mk(1)
	return set.FromSortedSparse(a), set.FromSortedSparse(bvals),
		set.BitsetFromSorted(a), set.BitsetFromSorted(bvals)
}

func BenchmarkFig5a_Intersections(b *testing.B) {
	for _, card := range []int{100000, 1000000} {
		ua, ub, ba, bb := fig5aSets(card, 0.25)
		var buf set.Buffer
		b.Run(fmt.Sprintf("card%d/uint_uint", card), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				set.IntersectInto(&buf, &ua, &ub)
			}
		})
		b.Run(fmt.Sprintf("card%d/bs_uint", card), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				set.IntersectInto(&buf, &ba, &ub)
			}
		})
		b.Run(fmt.Sprintf("card%d/bs_bs", card), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				set.IntersectInto(&buf, &ba, &bb)
			}
		})
	}
}

// ---- Figure 5b: SpGEMM attribute orders ----------------------------------

func BenchmarkFig5b_SMMOrders(b *testing.B) {
	sparseFixture(b)
	// Discover vertex names from the plan.
	p, _, err := sparseEng.Prepare(lagen.SMMQuery, core.QueryOptions{})
	if err != nil {
		b.Fatal(err)
	}
	bag := p.GHD.Root.Bag // [k, i, j] naming per the planner
	iV, kV, jV := bag[1], bag[0], bag[2]
	b.Run("cost10_ikj_relaxed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sparseEng.QueryWith(lagen.SMMQuery, core.QueryOptions{
				ForcedOrder: []string{iV, kV, jV}, ForcedRelaxed: true,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cost50_ijk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sparseEng.QueryWith(lagen.SMMQuery, core.QueryOptions{
				ForcedOrder: []string{iV, jV, kV},
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Figure 5c: Q5 attribute orders ---------------------------------------

func BenchmarkFig5c_Q5Orders(b *testing.B) {
	eng := tpchFixture(b)
	// The four orders of Fig. 5c over the big Q5 GHD node, expressed by
	// their leading attributes (o=orderkey, c=custkey, s=suppkey,
	// n=nationkey). Orders are applied to the root node; nationkey must
	// satisfy the running constraints so all permutations of the bag are
	// tried via forced orders.
	p, _, err := eng.Prepare(tpch.Queries["q5"], core.QueryOptions{})
	if err != nil {
		b.Fatal(err)
	}
	bag := p.GHD.Root.Bag
	find := func(name string) string {
		for _, v := range bag {
			if v == name {
				return v
			}
		}
		b.Fatalf("vertex %s not in %v", name, bag)
		return ""
	}
	o, c, s, n := find("orderkey"), find("custkey"), find("suppkey"), find("nationkey")
	for _, ord := range []struct {
		label string
		attrs []string
	}{
		{"o_c_n_s", []string{o, c, n, s}},
		{"o_n_s_c", []string{o, n, s, c}},
		{"c_o_n_s", []string{c, o, n, s}},
		{"n_s_c_o", []string{n, s, c, o}},
	} {
		ord := ord
		b.Run(ord.label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.QueryWith(tpch.Queries["q5"], core.QueryOptions{ForcedOrder: ord.attrs}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 6: voter pipelines ----------------------------------------------

func BenchmarkFig6_VoterPipelines(b *testing.B) {
	cat := storage.NewCatalog()
	if err := voter.Generate(cat, 60000, 300, 11); err != nil {
		b.Fatal(err)
	}
	if err := cat.Freeze(); err != nil {
		b.Fatal(err)
	}
	pipelines := []struct {
		label string
		run   func(*storage.Catalog, int) (voter.Phases, error)
	}{
		{"levelheaded", voter.RunUnified},
		{"monetdb_sklearn", voter.RunMonetSklearn},
		{"pandas_sklearn", voter.RunPandasSklearn},
		{"spark", voter.RunSpark},
	}
	for _, p := range pipelines {
		p := p
		b.Run(p.label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.run(cat, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- §IV-B: GHD heuristics --------------------------------------------------

func BenchmarkGHDHeuristics_Q5(b *testing.B) {
	eng := tpchFixture(b)
	// The selected 2-node GHD (heuristics on) vs the same query executed
	// through the EmptyHeaded-style optimizer, which follows bag order.
	b.Run("heuristic_plan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(tpch.Queries["q5"]); err != nil {
				b.Fatal(err)
			}
		}
	})
	noOpt := core.New(core.WithCostOptimizer(false))
	if _, err := tpch.Populate(noOpt.Catalog(), benchSF, 2026); err != nil {
		b.Fatal(err)
	}
	if _, err := noOpt.Query(tpch.Queries["q5"]); err != nil {
		b.Fatal(err)
	}
	b.Run("emptyheaded_style", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := noOpt.Query(tpch.Queries["q5"]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
