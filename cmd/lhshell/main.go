// Command lhshell is an interactive SQL shell over the LevelHeaded
// engine. It starts with an empty catalog or a generated dataset:
//
//	lhshell -gen tpch -sf 0.01        # TPC-H tables
//	lhshell -gen matrix -la 0.2       # harbor-sim matrix + vec
//	lhshell -gen voter                # voters + precincts
//
// Meta commands:
//
//	\d               list tables
//	\d <table>       describe one table
//	\explain <sql>   show hypergraph / GHD / attribute order
//	\stats           show cumulative engine metrics
//	\metrics         same as \stats (counters plus latency quantiles)
//	\queries         show in-flight queries and recent trace IDs
//	\statements [by] per-fingerprint statement statistics, sorted by
//	                 time (default), calls, mean, rows, errors, alloc,
//	                 drift or ratio
//	\timing          toggle per-query timing
//	\q               quit
//
// EXPLAIN ANALYZE <sql> executes the query and prints the plan plus
// measured phase timings and per-kernel intersection counts.
// Everything else is parsed as SQL.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	lh "repro"
	"repro/internal/core"
	"repro/internal/lagen"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/voter"
)

const maxPrintRows = 40

const explainAnalyze = "EXPLAIN ANALYZE "

func main() {
	gen := flag.String("gen", "", "dataset to generate: tpch, matrix, voter")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	la := flag.Float64("la", 0.1, "matrix scale")
	flag.Parse()

	eng := core.New()
	switch *gen {
	case "tpch":
		sz, err := tpch.Populate(eng.Catalog(), *sf, 2026)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("generated TPC-H SF %g (%d lineitems)\n", *sf, sz.Lineitem)
	case "matrix":
		spec, err := lagen.Profile("harbor", *la)
		if err != nil {
			log.Fatal(err)
		}
		nnz, err := lagen.LoadSparse(eng.Catalog(), spec, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("generated %s-sim matrix: n=%d nnz=%d (tables: matrix, vec)\n", spec.Name, spec.N, nnz)
	case "voter":
		if err := voter.Generate(eng.Catalog(), 100000, 500, 2026); err != nil {
			log.Fatal(err)
		}
		fmt.Println("generated voter dataset (tables: voters, precincts)")
	case "":
	default:
		log.Fatalf("unknown dataset %q", *gen)
	}

	fmt.Println("LevelHeaded shell — \\q to quit, \\d to list tables, \\explain <sql> for plans, \\metrics, \\queries and \\statements for telemetry")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	timing := true
	for {
		fmt.Print("lh> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\q` || line == "quit" || line == "exit":
			return
		case line == `\timing`:
			timing = !timing
			fmt.Printf("timing %v\n", timing)
		case line == `\d`:
			for _, name := range eng.Catalog().Tables() {
				t := eng.Catalog().Table(name)
				fmt.Printf("%-12s %8d rows\n", name, t.NumRows)
			}
		case strings.HasPrefix(line, `\d `):
			name := strings.TrimSpace(strings.TrimPrefix(line, `\d `))
			t := eng.Catalog().Table(name)
			if t == nil {
				fmt.Printf("no table %q\n", name)
				continue
			}
			for _, cd := range t.Schema.Cols {
				role := "annotation"
				if cd.Role == storage.Key {
					role = "key(" + cd.DomainName() + ")"
					if cd.PK {
						role += " pk"
					}
				}
				fmt.Printf("  %-20s %-8s %s\n", cd.Name, cd.Kind, role)
			}
		case strings.HasPrefix(line, `\explain `):
			sql := strings.TrimPrefix(line, `\explain `)
			s, err := eng.Explain(sql)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(s)
		case line == `\stats` || line == `\metrics`:
			fmt.Print(eng.Metrics().SnapshotString())
		case line == `\statements` || strings.HasPrefix(line, `\statements `):
			by := strings.TrimSpace(strings.TrimPrefix(line, `\statements`))
			snaps := eng.Statements(by, 0)
			if len(snaps) == 0 {
				fmt.Println("no statements tracked (unknown sort key?)")
				continue
			}
			fmt.Printf("%-16s %6s %4s %10s %10s %10s %6s %5s %6s  %s\n",
				"fingerprint", "calls", "errs", "mean", "p95", "total", "rows", "drift", "ratio", "query")
			for _, s := range snaps {
				fmt.Printf("%-16s %6d %4d %10v %10v %10v %6d %5d %6.2f  %s\n",
					s.FingerprintHex, s.Calls, s.Errors,
					time.Duration(s.MeanNs).Round(time.Microsecond),
					time.Duration(s.P95Ns).Round(time.Microsecond),
					time.Duration(s.TotalNs).Round(time.Microsecond),
					s.Rows, s.PlanChanges, s.CostRatio, s.Text)
			}
		case line == `\queries`:
			reg := eng.Telemetry().Registry
			infos := reg.List()
			if len(infos) == 0 {
				fmt.Println("no queries in flight")
			}
			for _, qi := range infos {
				fmt.Printf("#%-4d %-10v %-10s %s\n", qi.ID, qi.Elapsed.Round(time.Millisecond), qi.Phase, qi.SQL)
			}
			if ids := reg.TraceIDs(); len(ids) > 0 {
				fmt.Printf("retained traces: %v (run EXPLAIN ANALYZE <sql> to see spans)\n", ids)
			}
		case len(line) >= len(explainAnalyze) && strings.EqualFold(line[:len(explainAnalyze)], explainAnalyze):
			sql := strings.TrimSpace(line[len(explainAnalyze):])
			s, err := eng.ExplainAnalyze(sql)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(s)
		default:
			t0 := time.Now()
			res, err := eng.QueryContext(context.Background(), line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			printResult(res)
			if timing {
				fmt.Printf("(%d rows, %v)\n", res.NumRows, time.Since(t0).Round(time.Microsecond))
				if res.Stats != nil {
					fmt.Println(res.Stats.Line())
				}
			}
		}
	}
}

func printResult(res *lh.Result) {
	for _, c := range res.Cols {
		fmt.Printf("%-16s", c.Name)
	}
	fmt.Println()
	n := res.NumRows
	if n > maxPrintRows {
		n = maxPrintRows
	}
	for r := 0; r < n; r++ {
		for _, c := range res.Cols {
			switch c.Kind {
			case lh.KindInt:
				fmt.Printf("%-16d", c.I64[r])
			case lh.KindString:
				fmt.Printf("%-16s", c.Str[r])
			default:
				fmt.Printf("%-16.6g", c.F64[r])
			}
		}
		fmt.Println()
	}
	if res.NumRows > maxPrintRows {
		fmt.Printf("... (%d more rows)\n", res.NumRows-maxPrintRows)
	}
}
