// Command lhbench regenerates every table and figure of the paper's
// evaluation (§VI–§VII) and prints them in the paper's format: the best
// engine's absolute time as the "Baseline" column and every engine's
// runtime relative to it.
//
//	lhbench -table 2          # Table II  (TPC-H + LA, all engines)
//	lhbench -table 3          # Table III (optimization ablations)
//	lhbench -table 4          # Table IV  (COO→CSR conversion vs SMV)
//	lhbench -fig 5a           # Figure 5a (set intersection layouts)
//	lhbench -fig 5b           # Figure 5b (SpGEMM attribute orders)
//	lhbench -fig 5c           # Figure 5c (TPC-H Q5 attribute orders)
//	lhbench -fig 6            # Figure 6  (voter classification app)
//	lhbench -all              # everything
//
// Scale knobs (-sf, -la, -dense, -voters) trade fidelity for runtime;
// the defaults fit a laptop in a few minutes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/blas"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/lagen"
	"repro/internal/pairwise"
	"repro/internal/set"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/tpch"
	"repro/internal/voter"
	"repro/internal/wal"
)

var (
	flagTable  = flag.String("table", "", "paper table to regenerate: 2, 3, 4")
	flagFig    = flag.String("fig", "", "paper figure to regenerate: 5a, 5b, 5c, 6")
	flagAll    = flag.Bool("all", false, "regenerate everything")
	flagSF     = flag.String("sf", "0.01,0.05", "TPC-H scale factors (comma separated)")
	flagLA     = flag.Float64("la", 0.25, "sparse matrix scale (1.0 = generator defaults)")
	flagDense  = flag.String("dense", "128,192,256", "dense matrix orders (stand-ins for 8192/12288/16384)")
	flagVoters = flag.Int("voters", 200000, "voter application rows")
	flagRuns   = flag.Int("runs", 3, "timed runs per measurement (best reported)")
	flagCount  = flag.Int("count", 0, "timed runs per measurement, benchstat-style (overrides -runs when > 0)")
	flagWarmup = flag.Int("warmup", 1, "untimed warmup runs before each measurement")
	flagSuite  = flag.String("suite", "", "run only a named measurement suite and exit (tpch: levelheaded TPC-H queries, no rival engines — the bench-save/bench-compare baseline; ingest-ab: durability sync-policy A/B on TPC-H lineitem ingest; approx-ab: approximate tier vs exact on count-distinct/heavy-hitter queries)")
	flagSync   = flag.String("sync", "", "run every engine with durability enabled in a temp dir under this WAL sync policy (always, group[:interval], none; empty = in-memory). Lets bench-compare measure the read-path cost of a durable engine")

	flagStats   = flag.Bool("stats", false, "print a per-query observability line (first run of each query) and cumulative engine metrics at exit")
	flagJSON    = flag.String("json", "", "write per-query levelheaded measurements (name, min/mean ns, rows, dispatch) as JSON to this file")
	flagHTTP    = flag.String("http", "", "serve /metrics and /debug endpoints on this address while the benchmark runs (all engines share one collector)")
	flagCPUProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
	flagMemProf = flag.String("memprofile", "", "write a heap profile to this file at exit")
)

// sharedTel, when -http is set, is the collector every engine reports
// into so the debug server sees the whole benchmark fleet. allEngines
// tracks every engine built, for the cumulative -stats dump.
var (
	sharedTel  *telemetry.Collector
	allEngines []*core.Engine
)

// benchRec is one -json output row: the levelheaded measurement of one
// (query, dataset) cell.
type benchRec struct {
	Name     string `json:"name"`
	Runs     int    `json:"runs"`
	MinNs    int64  `json:"min_ns"`
	MeanNs   int64  `json:"mean_ns"`
	Rows     int    `json:"rows"`
	Dispatch string `json:"dispatch"`
	// Paths is the hybrid executor's chosen access path per GHD node
	// (pre-order) — the per-node refinement of the Dispatch class.
	Paths []string `json:"paths,omitempty"`
	// AllocPerOp is the mean heap bytes allocated per run (the
	// QueryStats runtime/metrics delta).
	AllocPerOp int64 `json:"alloc_bytes_per_op"`
	// Note carries freeform context for pseudo-records (names starting
	// with "_", e.g. the ingest-ab sync-policy measurements) that
	// benchdiff excludes from the regression gate.
	Note string `json:"note,omitempty"`
}

var benchRecs []benchRec

// statsSeen dedups the -stats lines: best() reruns each query, but one
// observability line per distinct query is what's readable.
var statsSeen = map[string]bool{}

func main() {
	flag.Parse()
	if *flagCPUProf != "" {
		f, err := os.Create(*flagCPUProf)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *flagMemProf != "" {
		defer func() {
			f, err := os.Create(*flagMemProf)
			if err != nil {
				log.Fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
		}()
	}
	if *flagHTTP != "" {
		sharedTel = telemetry.NewCollector()
		srv, err := telemetry.Serve(*flagHTTP, sharedTel)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("telemetry: http://%s/metrics\n", srv.Addr())
	}
	defer cleanupTempDirs()
	switch *flagSuite {
	case "tpch":
		suiteTPCH()
		finishSuite()
		return
	case "ingest-ab":
		suiteIngestAB()
		finishSuite()
		return
	case "approx-ab":
		suiteApproxAB()
		finishSuite()
		return
	case "":
	default:
		log.Fatalf("unknown -suite %q (have: tpch, ingest-ab, approx-ab)", *flagSuite)
	}
	if *flagAll {
		*flagTable, *flagFig = "all", "all"
	}
	if *flagTable == "" && *flagFig == "" {
		*flagTable, *flagFig = "all", "all"
	}
	if has(*flagTable, "2") {
		tableII()
	}
	if has(*flagTable, "3") {
		tableIII()
	}
	if has(*flagTable, "4") {
		tableIV()
	}
	if has(*flagFig, "5a") {
		fig5a()
	}
	if has(*flagFig, "5b") {
		fig5b()
	}
	if has(*flagFig, "5c") {
		fig5c()
	}
	if has(*flagFig, "6") {
		fig6()
	}
	if *flagJSON != "" {
		writeJSON(*flagJSON)
	}
	if *flagStats {
		printCumulativeMetrics()
	}
}

// writeJSON dumps the levelheaded measurements collected by benchQ.
func writeJSON(path string) {
	data, err := json.MarshalIndent(benchRecs, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %d measurements to %s\n", len(benchRecs), path)
}

// printCumulativeMetrics sums the raw counters of every engine the run
// built (latency quantiles are per-collector, not summable, so only
// SnapshotCounters feeds the fleet total).
func printCumulativeMetrics() {
	if len(allEngines) == 0 {
		return
	}
	total := map[string]int64{}
	for _, e := range allEngines {
		for k, v := range e.Metrics().SnapshotCounters() {
			total[k] += v
		}
	}
	keys := make([]string, 0, len(total))
	for k := range total {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("\n=== cumulative engine metrics (%d engines)\n", len(allEngines))
	for _, k := range keys {
		fmt.Printf("%-26s %d\n", k, total[k])
	}
}

func has(sel, key string) bool {
	return sel == "all" || sel == key || strings.Contains(sel, key)
}

// timedRuns resolves the timed-run count: -count (benchstat-style)
// wins over the legacy -runs.
func timedRuns() int {
	if *flagCount > 0 {
		return *flagCount
	}
	return *flagRuns
}

// best times f over the timed runs (after -warmup untimed runs) and
// reports the minimum.
func best(f func()) time.Duration {
	for i := 0; i < *flagWarmup; i++ {
		f()
	}
	bestD := time.Duration(1<<62 - 1)
	for i := 0; i < timedRuns(); i++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0); d < bestD {
			bestD = d
		}
	}
	return bestD
}

// row prints one paper-style row: baseline absolute, others relative.
func row(query, data string, times map[string]time.Duration, order []string) {
	bestD := time.Duration(1<<62 - 1)
	for _, d := range times {
		if d > 0 && d < bestD {
			bestD = d
		}
	}
	fmt.Printf("%-6s %-10s %10s", query, data, bestD.Round(time.Microsecond))
	for _, name := range order {
		d, ok := times[name]
		switch {
		case !ok:
			fmt.Printf(" %9s", "-")
		case d < 0:
			fmt.Printf(" %9s", "oom/t-o")
		default:
			fmt.Printf(" %8.2fx", float64(d)/float64(bestD))
		}
	}
	fmt.Println()
}

func header(title string, engines []string) {
	fmt.Printf("\n=== %s\n", title)
	fmt.Printf("%-6s %-10s %10s", "query", "data", "baseline")
	for _, e := range engines {
		fmt.Printf(" %9s", e)
	}
	fmt.Println()
}

func sfList() []float64 {
	var out []float64
	for _, s := range strings.Split(*flagSF, ",") {
		var v float64
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &v); err == nil {
			out = append(out, v)
		}
	}
	sort.Float64s(out)
	return out
}

func denseList() []int {
	var out []int
	for _, s := range strings.Split(*flagDense, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &v); err == nil {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// finishSuite is the shared tail of every -suite run: JSON dump and
// the cumulative -stats metrics.
func finishSuite() {
	if *flagJSON != "" {
		writeJSON(*flagJSON)
	}
	if *flagStats {
		printCumulativeMetrics()
	}
}

// tempDirs tracks the durability scratch directories created for
// -sync and the ingest-ab suite; cleanupTempDirs removes them on a
// normal exit (log.Fatal leaks them — they live under os.TempDir).
var tempDirs []string

func durTempDir(pattern string) string {
	dir, err := os.MkdirTemp("", pattern)
	if err != nil {
		log.Fatal(err)
	}
	tempDirs = append(tempDirs, dir)
	return dir
}

func cleanupTempDirs() {
	for _, d := range tempDirs {
		if err := os.RemoveAll(d); err != nil {
			fmt.Fprintf(os.Stderr, "cleanup %s: %v\n", d, err)
		}
	}
}

// newEngine builds an engine wired into the shared telemetry collector
// (when -http is on) and tracks it for the cumulative -stats dump.
// With -sync set, every engine is durable in its own temp dir, so the
// suites measure read paths with the WAL machinery live.
func newEngine(opts ...core.Option) *core.Engine {
	if sharedTel != nil {
		opts = append(opts, core.WithTelemetry(sharedTel))
	}
	if *flagSync != "" {
		pol, err := wal.ParsePolicy(*flagSync)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, core.WithDurability(durTempDir("lhbench-dur-*"), pol))
	}
	e := core.New(opts...)
	allEngines = append(allEngines, e)
	return e
}

// benchQ times one levelheaded query over the timed runs (after
// -warmup untimed runs), recording min/mean latency, mean heap bytes
// allocated per run, row count and dispatch class for -json, and
// returns the minimum (the number every table reports).
func benchQ(eng *core.Engine, name, sql string) time.Duration {
	for i := 0; i < *flagWarmup; i++ {
		if _, err := eng.Query(sql); err != nil {
			log.Fatal(err)
		}
	}
	n := timedRuns()
	rec := benchRec{Name: name, Runs: n}
	minD := time.Duration(1<<62 - 1)
	var sum time.Duration
	var allocSum uint64
	for i := 0; i < n; i++ {
		t0 := time.Now()
		res, err := eng.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		d := time.Since(t0)
		sum += d
		if d < minD {
			minD = d
		}
		rec.Rows = res.NumRows
		if res.Stats != nil {
			rec.Dispatch = res.Stats.Dispatch
			rec.Paths = res.Stats.AccessPaths
			allocSum += res.Stats.AllocBytes
		}
		if *flagStats && res.Stats != nil && !statsSeen[sql] {
			statsSeen[sql] = true
			fmt.Printf("  stats: %s\n", res.Stats.Line())
		}
	}
	rec.MinNs = int64(minD)
	rec.MeanNs = int64(sum) / int64(n)
	rec.AllocPerOp = int64(allocSum) / int64(n)
	benchRecs = append(benchRecs, rec)
	return minD
}

// suiteTPCH runs only the levelheaded TPC-H measurements — the stable,
// rival-free suite that bench-save snapshots and bench-compare diffs.
func suiteTPCH() {
	for _, sf := range sfList() {
		eng := tpchEngine(sf)
		fmt.Printf("\n=== TPC-H suite (SF %g, %d runs after %d warmup)\n", sf, timedRuns(), *flagWarmup)
		for _, name := range tpch.QueryNames {
			d := benchQ(eng, fmt.Sprintf("%s/sf%g", name, sf), tpch.Queries[name])
			r := benchRecs[len(benchRecs)-1]
			fmt.Printf("%-8s %12s  %10s/op\n", name, d.Round(time.Microsecond), fmtAlloc(r.AllocPerOp))
		}
	}
}

func fmtAlloc(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// ---- ingest-ab suite --------------------------------------------------

// suiteIngestAB A/Bs the WAL sync policies on TPC-H ingest: the same
// stream of generated lineitem rows is appended batch-by-batch into a
// fresh engine per policy — in-memory (no durability), WAL without
// fsync, group commit (the lhserve default), and fsync-per-batch. Each
// policy's runs land in the -json output as a "_ingest/<policy>"
// pseudo-record (benchdiff skips "_" names, so these annotate
// BENCH_tpch.json without entering the regression gate).
func suiteIngestAB() {
	const totalRows, batch = 20000, 250
	rows := genLineitemRows(totalRows)
	policies := []struct {
		name string
		desc string
		opts []core.Option
	}{
		{"mem", "no durability (baseline)", nil},
		{"none", "WAL write per batch, no fsync", durOpts(wal.NoSync())},
		{"group", "WAL write per batch, fsync on the group-commit interval", durOpts(wal.GroupCommit(wal.DefaultInterval))},
		{"always", "WAL write + fsync per batch", durOpts(wal.SyncEvery())},
	}
	fmt.Printf("\n=== ingest A/B — sync policies (%d lineitem rows per run, batches of %d, %d runs after %d warmup)\n",
		totalRows, batch, timedRuns(), *flagWarmup)
	fmt.Printf("%-8s %12s %12s %10s\n", "policy", "min", "mean", "rows/s")
	var memMin time.Duration
	ctx := context.Background()
	for _, pol := range policies {
		eng := core.New(pol.opts...)
		allEngines = append(allEngines, eng)
		if _, err := eng.CreateTable(lineitemSchema()); err != nil {
			log.Fatal(err)
		}
		ingestAll := func() {
			for lo := 0; lo < len(rows); lo += batch {
				hi := lo + batch
				if hi > len(rows) {
					hi = len(rows)
				}
				if _, err := eng.IngestRows(ctx, "lineitem", rows[lo:hi]); err != nil {
					log.Fatal(err)
				}
			}
		}
		for i := 0; i < *flagWarmup; i++ {
			ingestAll()
		}
		n := timedRuns()
		minD := time.Duration(1<<62 - 1)
		var sum time.Duration
		for i := 0; i < n; i++ {
			t0 := time.Now()
			ingestAll()
			d := time.Since(t0)
			sum += d
			if d < minD {
				minD = d
			}
		}
		eng.BeginShutdown()
		eng.Drain(ctx)
		if pol.name == "mem" {
			memMin = minD
		}
		ratio := ""
		if memMin > 0 && pol.name != "mem" {
			ratio = fmt.Sprintf("  (%.2fx vs mem)", float64(minD)/float64(memMin))
		}
		rate := float64(totalRows) / minD.Seconds()
		fmt.Printf("%-8s %12s %12s %10.0f%s\n", pol.name,
			minD.Round(time.Microsecond), (sum / time.Duration(n)).Round(time.Microsecond), rate, ratio)
		benchRecs = append(benchRecs, benchRec{
			Name:   "_ingest/" + pol.name,
			Runs:   n,
			MinNs:  int64(minD),
			MeanNs: int64(sum) / int64(n),
			Rows:   totalRows,
			Note:   fmt.Sprintf("sync A/B: %d lineitem rows per run in batches of %d; %s", totalRows, batch, pol.desc),
		})
	}
}

// ---- approx-ab suite --------------------------------------------------

// suiteApproxAB A/Bs the approximate query tier against exact execution
// on TPC-H-style count-distinct, heavy-hitter and filtered-aggregate
// queries over lineitem: the same engine answers each query twice — a
// plain exact run, then an ApproxOK run that the cost model routes onto
// a sketch or sample — reporting the speedup, the chosen route, and the
// observed error against the advertised bound. Each query lands in the
// -json output as an "_approx/<name>" pseudo-record (benchdiff skips
// "_" names, so these annotate BENCH_tpch.json without entering the
// regression gate).
func suiteApproxAB() {
	sf := sfList()[0]
	eng := newEngine()
	if _, err := tpch.Populate(eng.Catalog(), sf, 2026); err != nil {
		log.Fatal(err)
	}
	queries := []struct{ name, sql string }{
		{"distinct_part", "SELECT count(distinct l_partkey) FROM lineitem"},
		{"distinct_supp", "SELECT count(distinct l_suppkey) FROM lineitem"},
		{"hh_shipmode", "SELECT l_shipmode, count(*) FROM lineitem GROUP BY l_shipmode"},
		{"filter_price", "SELECT count(*), sum(l_extendedprice) FROM lineitem WHERE l_quantity < 25"},
	}
	fmt.Printf("\n=== approx A/B — exact vs approximate tier (TPC-H SF %g, %d runs after %d warmup)\n",
		sf, timedRuns(), *flagWarmup)
	fmt.Printf("%-14s %12s %12s %9s  %-13s %12s %12s\n",
		"query", "exact", "approx", "speedup", "route", "max err", "bound")
	for _, q := range queries {
		exactMin, _, exactRes := bestQueryWith(eng, q.sql, core.QueryOptions{})
		approxMin, approxMean, approxRes := bestQueryWith(eng, q.sql, core.QueryOptions{ApproxOK: true})
		route, bound := "exact", 0.0
		if st := approxRes.Stats; st != nil {
			route = st.Dispatch
			bound = st.ErrorBound
		}
		obsErr := maxAbsError(exactRes, approxRes)
		speedup := float64(exactMin) / float64(approxMin)
		fmt.Printf("%-14s %12s %12s %8.2fx  %-13s %12.4g %12.4g\n",
			q.name, exactMin.Round(time.Microsecond), approxMin.Round(time.Microsecond),
			speedup, route, obsErr, bound)
		if obsErr > bound && bound > 0 {
			log.Fatalf("approx-ab %s: observed error %g exceeds advertised bound %g", q.name, obsErr, bound)
		}
		benchRecs = append(benchRecs, benchRec{
			Name:     "_approx/" + q.name,
			Runs:     timedRuns(),
			MinNs:    int64(approxMin),
			MeanNs:   int64(approxMean),
			Rows:     approxRes.NumRows,
			Dispatch: route,
			Note: fmt.Sprintf("approx A/B vs exact: exact min %s, speedup %.2fx, observed error %.4g within advertised bound %.4g",
				exactMin.Round(time.Microsecond), speedup, obsErr, bound),
		})
	}
}

// bestQueryWith times one query under explicit options over the timed
// runs (after -warmup untimed runs, which also absorb the first-use
// summary build on the ApproxOK side).
func bestQueryWith(eng *core.Engine, sql string, qo core.QueryOptions) (time.Duration, time.Duration, *exec.Result) {
	var res *exec.Result
	var err error
	for i := 0; i < *flagWarmup; i++ {
		if res, err = eng.QueryWith(sql, qo); err != nil {
			log.Fatal(err)
		}
	}
	n := timedRuns()
	minD := time.Duration(1<<62 - 1)
	var sum time.Duration
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if res, err = eng.QueryWith(sql, qo); err != nil {
			log.Fatal(err)
		}
		d := time.Since(t0)
		sum += d
		if d < minD {
			minD = d
		}
	}
	return minD, sum / time.Duration(n), res
}

// maxAbsError reports the largest absolute aggregate-cell difference
// between an exact and an approximate result: rows align by the string
// group column when present (groups absent from the approximate answer
// are covered by MissBound, not this number), scalars align row 0.
func maxAbsError(exact, approx *exec.Result) float64 {
	if len(exact.Cols) == 0 || len(approx.Cols) == 0 || exact.NumRows == 0 || approx.NumRows == 0 {
		return 0
	}
	worst := 0.0
	if exact.Cols[0].Kind == exec.KindString {
		byKey := map[string][]float64{}
		for r := 0; r < exact.NumRows; r++ {
			vals := make([]float64, 0, len(exact.Cols)-1)
			for _, c := range exact.Cols[1:] {
				vals = append(vals, aggCell(c, r))
			}
			byKey[exact.Cols[0].Str[r]] = vals
		}
		for r := 0; r < approx.NumRows; r++ {
			vals := byKey[approx.Cols[0].Str[r]]
			for ci, c := range approx.Cols[1:] {
				if ci < len(vals) {
					if d := mathAbs(aggCell(c, r) - vals[ci]); d > worst {
						worst = d
					}
				}
			}
		}
		return worst
	}
	for ci := range exact.Cols {
		if d := mathAbs(aggCell(approx.Cols[ci], 0) - aggCell(exact.Cols[ci], 0)); d > worst {
			worst = d
		}
	}
	return worst
}

func aggCell(c *exec.Column, r int) float64 {
	if c.Kind == exec.KindFloat {
		return c.F64[r]
	}
	return float64(c.I64[r])
}

func mathAbs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// durOpts wires a durability option with a scratch directory for one
// ingest-ab engine.
func durOpts(pol wal.Policy) []core.Option {
	return []core.Option{core.WithDurability(durTempDir("lhbench-ingest-*"), pol)}
}

// lineitemSchema pulls the TPC-H lineitem schema out of the shared
// schema list, so the ingest A/B exercises the real 14-column table
// (three dictionary-encoded key domains, dates, strings).
func lineitemSchema() storage.Schema {
	for _, s := range tpch.Schemas() {
		if s.Name == "lineitem" {
			return s
		}
	}
	log.Fatal("tpch schemas: no lineitem")
	return storage.Schema{}
}

// genLineitemRows synthesizes n lineitem rows with TPC-H-shaped value
// distributions (a small deterministic LCG keeps runs comparable).
func genLineitemRows(n int) [][]interface{} {
	flags := []string{"A", "N", "R"}
	status := []string{"O", "F"}
	modes := []string{"AIR", "MAIL", "RAIL", "SHIP", "TRUCK", "FOB", "REG AIR"}
	rows := make([][]interface{}, n)
	seed := uint64(2026)
	next := func(mod int) int64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int64((seed >> 33) % uint64(mod))
	}
	for i := range rows {
		qty := float64(next(50) + 1)
		price := float64(next(90000)+1000) / 100 * qty
		ship := int64(9100 + next(2500))
		rows[i] = []interface{}{
			int64(i/4 + 1),          // l_orderkey: ~4 lines per order
			next(20000) + 1,         // l_partkey
			next(1000) + 1,          // l_suppkey
			int64(i%4 + 1),          // l_linenumber
			qty,                     // l_quantity
			price,                   // l_extendedprice
			float64(next(11)) / 100, // l_discount
			float64(next(9)) / 100,  // l_tax
			flags[next(3)],          // l_returnflag
			status[next(2)],         // l_linestatus
			ship,                    // l_shipdate (days)
			ship + next(30),         // l_commitdate
			ship + next(30),         // l_receiptdate
			modes[next(7)],          // l_shipmode
		}
	}
	return rows
}

// tpchEngine builds a populated, cache-warmed engine.
func tpchEngine(sf float64, opts ...core.Option) *core.Engine {
	eng := newEngine(opts...)
	if _, err := tpch.Populate(eng.Catalog(), sf, 2026); err != nil {
		log.Fatal(err)
	}
	for _, name := range tpch.QueryNames {
		if _, err := eng.Query(tpch.Queries[name]); err != nil {
			log.Fatal(err)
		}
	}
	return eng
}

// ---- Table II ---------------------------------------------------------

func tableII() {
	// "lb-sim" is the LogicBlox stand-in: the same WCOJ engine with the
	// cost-based optimizer disabled (EmptyHeaded-style orders).
	engines := []string{"levlhd", "mkl-sim", "hyper-sim", "monet-sim", "lb-sim"}
	header("Table II — TPC-H (business intelligence)", engines)
	for _, sf := range sfList() {
		eng := tpchEngine(sf)
		lb := tpchEngine(sf, core.WithCostOptimizer(false))
		pw := pairwise.New(eng.Catalog())
		cs := colstore.New(eng.Catalog())
		for _, name := range tpch.QueryNames {
			times := map[string]time.Duration{}
			times["levlhd"] = benchQ(eng, fmt.Sprintf("%s/sf%g", name, sf), tpch.Queries[name])
			times["hyper-sim"] = best(func() { mustRows(pw.RunTPCH(name)) })
			times["monet-sim"] = best(func() { mustRows2(cs.RunTPCH(name)) })
			times["lb-sim"] = best(func() { mustQ(lb, tpch.Queries[name]) })
			row(name, fmt.Sprintf("SF %g", sf), times, engines)
		}
	}

	header("Table II — linear algebra (sparse)", engines)
	for _, prof := range []string{"harbor", "hv15r", "nlp240"} {
		spec, err := lagen.Profile(prof, *flagLA)
		if err != nil {
			log.Fatal(err)
		}
		eng := newEngine()
		if _, err := lagen.LoadSparse(eng.Catalog(), spec, 7); err != nil {
			log.Fatal(err)
		}
		mustQ(eng, lagen.SMVQuery) // warm tries
		m := eng.Catalog().Table("matrix")
		csr := toCSR(m, spec.N)
		x := eng.Catalog().Table("vec").Col("x").Floats
		pw := pairwise.New(eng.Catalog())
		cs := colstore.New(eng.Catalog())

		lb := newEngine(core.WithCostOptimizer(false))
		if _, err := lagen.LoadSparse(lb.Catalog(), spec, 7); err != nil {
			log.Fatal(err)
		}
		mustQ(lb, lagen.SMVQuery)

		times := map[string]time.Duration{}
		times["levlhd"] = benchQ(eng, "SMV/"+prof, lagen.SMVQuery)
		y := make([]float64, spec.N)
		times["mkl-sim"] = best(func() { blas.SpMV(csr, x, y) })
		times["hyper-sim"] = best(func() { mustSpMV(pw.SpMV("matrix", "vec")) })
		times["monet-sim"] = best(func() { mustSpMV(cs.SpMV("matrix", "vec")) })
		times["lb-sim"] = best(func() { mustQ(lb, lagen.SMVQuery) })
		row("SMV", prof, times, engines)

		// SMM with an intermediate-pair budget for the RDBMS engines
		// (the paper's oom column).
		budget := 400_000_000
		times = map[string]time.Duration{}
		times["levlhd"] = benchQ(eng, "SMM/"+prof, lagen.SMMQuery)
		times["mkl-sim"] = best(func() { blas.SpGEMM(csr, csr) })
		times["hyper-sim"] = timedOrOOM(func() error { _, _, err := pw.SpMM("matrix", "matrix", budget); return err })
		times["monet-sim"] = timedOrOOM(func() error { _, _, err := cs.SpMM("matrix", "matrix", budget); return err })
		row("SMM", prof, times, engines)
	}

	header("Table II — linear algebra (dense)", engines)
	for _, n := range denseList() {
		eng := newEngine()
		if err := lagen.LoadDense(eng.Catalog(), n, 9); err != nil {
			log.Fatal(err)
		}
		mustQ(eng, lagen.SMVQuery)
		a, x, err := lagen.DenseBuffer(eng.Catalog(), n)
		if err != nil {
			log.Fatal(err)
		}
		pw := pairwise.New(eng.Catalog())

		times := map[string]time.Duration{}
		times["levlhd"] = benchQ(eng, fmt.Sprintf("DMV/%d", n), lagen.SMVQuery)
		y := make([]float64, n)
		times["mkl-sim"] = best(func() { blas.Gemv(n, n, a, x, y) })
		times["hyper-sim"] = best(func() { mustSpMV(pw.SpMV("matrix", "vec")) })
		row("DMV", fmt.Sprint(n), times, engines)

		times = map[string]time.Duration{}
		times["levlhd"] = benchQ(eng, fmt.Sprintf("DMM/%d", n), lagen.SMMQuery)
		c := make([]float64, n*n)
		times["mkl-sim"] = best(func() {
			for i := range c {
				c[i] = 0
			}
			blas.GemmNT(n, n, n, a, a, c)
		})
		times["hyper-sim"] = timedOrOOM(func() error { _, _, err := pw.SpMM("matrix", "matrix", 200_000_000); return err })
		row("DMM", fmt.Sprint(n), times, engines)
	}
}

// ---- Table III ---------------------------------------------------------

func tableIII() {
	sf := sfList()[0]
	fmt.Printf("\n=== Table III — optimization ablations (TPC-H SF %g, LA scale %g)\n", sf, *flagLA)
	fmt.Printf("%-8s %12s %14s %14s\n", "query", "levelheaded", "-attr.elim", "-attr.ord")

	full := tpchEngine(sf)
	noElim := tpchEngine(sf, core.WithAttributeElimination(false))
	for _, name := range tpch.QueryNames {
		base := best(func() { mustQ(full, tpch.Queries[name]) })
		ne := best(func() { mustQ(noElim, tpch.Queries[name]) })
		worst := best(func() {
			if _, err := full.QueryWith(tpch.Queries[name], core.QueryOptions{WorstOrder: true}); err != nil {
				log.Fatal(err)
			}
		})
		fmt.Printf("%-8s %12s %13.2fx %13.2fx\n", name,
			base.Round(time.Microsecond), rel(ne, base), rel(worst, base))
	}

	// LA rows: DMM with vs without the BLAS dispatch; SMM best vs worst
	// order.
	for _, n := range denseList()[:1] {
		eng := newEngine()
		if err := lagen.LoadDense(eng.Catalog(), n, 9); err != nil {
			log.Fatal(err)
		}
		mustQ(eng, lagen.SMMQuery)
		noBlas := newEngine(core.WithBLAS(false))
		if err := lagen.LoadDense(noBlas.Catalog(), n, 9); err != nil {
			log.Fatal(err)
		}
		mustQ(noBlas, lagen.SMMQuery)
		base := best(func() { mustQ(eng, lagen.SMMQuery) })
		ne := best(func() { mustQ(noBlas, lagen.SMMQuery) })
		fmt.Printf("%-8s %12s %13.2fx %13s\n", fmt.Sprintf("DMM %d", n),
			base.Round(time.Microsecond), rel(ne, base), "-")
	}
	spec, err := lagen.Profile("harbor", *flagLA)
	if err != nil {
		log.Fatal(err)
	}
	eng := newEngine()
	if _, err := lagen.LoadSparse(eng.Catalog(), spec, 7); err != nil {
		log.Fatal(err)
	}
	mustQ(eng, lagen.SMMQuery)
	base := best(func() { mustQ(eng, lagen.SMMQuery) })
	worst := best(func() {
		if _, err := eng.QueryWith(lagen.SMMQuery, core.QueryOptions{WorstOrder: true}); err != nil {
			log.Fatal(err)
		}
	})
	fmt.Printf("%-8s %12s %13s %13.2fx\n", "SMM", base.Round(time.Microsecond), "-", rel(worst, base))
}

// ---- Table IV ------------------------------------------------------------

func tableIV() {
	fmt.Printf("\n=== Table IV — column store → CSR conversion vs LevelHeaded SMV (LA scale %g)\n", *flagLA)
	fmt.Printf("%-8s %12s %12s %8s\n", "dataset", "conversion", "smv", "ratio")
	for _, prof := range []string{"harbor", "hv15r", "nlp240"} {
		spec, err := lagen.Profile(prof, *flagLA)
		if err != nil {
			log.Fatal(err)
		}
		eng := newEngine()
		if _, err := lagen.LoadSparse(eng.Catalog(), spec, 7); err != nil {
			log.Fatal(err)
		}
		mustQ(eng, lagen.SMVQuery)
		cs := colstore.New(eng.Catalog())
		conv := best(func() {
			if _, err := cs.ConvertToCSR("matrix", spec.N, spec.N); err != nil {
				log.Fatal(err)
			}
		})
		smv := best(func() { mustQ(eng, lagen.SMVQuery) })
		fmt.Printf("%-8s %12s %12s %7.2fx\n", prof,
			conv.Round(time.Microsecond), smv.Round(time.Microsecond),
			float64(conv)/float64(smv))
	}
}

// ---- Figure 5a -------------------------------------------------------------

func fig5a() {
	fmt.Println("\n=== Figure 5a — set intersection layouts (time per intersection)")
	fmt.Printf("%-10s %12s %12s %12s\n", "card", "uint∩uint", "bs∩uint", "bs∩bs")
	for _, card := range []int{1_000_000, 10_000_000} {
		span := uint32(card * 4)
		mk := func(offset uint32) []uint32 {
			vals := make([]uint32, 0, card)
			for v := offset; len(vals) < card; v += span / uint32(card) {
				vals = append(vals, v)
			}
			return vals
		}
		a, b := mk(0), mk(1)
		ua, ub := set.FromSortedSparse(a), set.FromSortedSparse(b)
		ba, bb := set.BitsetFromSorted(a), set.BitsetFromSorted(b)
		var buf set.Buffer
		uu := best(func() { set.IntersectInto(&buf, &ua, &ub) })
		bu := best(func() { set.IntersectInto(&buf, &ba, &ub) })
		bsbs := best(func() { set.IntersectInto(&buf, &ba, &bb) })
		fmt.Printf("%-10s %12s %12s %12s   (uint/bs = %.1fx)\n", fmt.Sprintf("1e%d", digits(card)),
			uu.Round(time.Microsecond), bu.Round(time.Microsecond), bsbs.Round(time.Microsecond),
			float64(uu)/float64(bsbs))
	}
}

func digits(n int) int {
	d := 0
	for n >= 10 {
		n /= 10
		d++
	}
	return d
}

// ---- Figure 5b ----------------------------------------------------------------

func fig5b() {
	// The cost-50 [i,j,k] order enumerates |i|×|j| pairs — the quadratic
	// blowup that makes the paper's run exhaust 1 TB of RAM. Cap this
	// experiment's scale so the bad order terminates at all.
	scale := *flagLA
	if scale > 0.06 {
		scale = 0.06
	}
	fmt.Printf("\n=== Figure 5b — SpGEMM attribute orders (nlp240-sim, LA scale %g)\n", scale)
	spec, err := lagen.Profile("nlp240", scale)
	if err != nil {
		log.Fatal(err)
	}
	eng := newEngine()
	if _, err := lagen.LoadSparse(eng.Catalog(), spec, 7); err != nil {
		log.Fatal(err)
	}
	mustQ(eng, lagen.SMMQuery)
	p, _, err := eng.Prepare(lagen.SMMQuery, core.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	bag := p.GHD.Root.Bag // [k, i, j] per the planner's vertex naming
	kV, iV, jV := bag[0], bag[1], bag[2]
	ikj := best(func() {
		if _, err := eng.QueryWith(lagen.SMMQuery, core.QueryOptions{
			ForcedOrder: []string{iV, kV, jV}, ForcedRelaxed: true,
		}); err != nil {
			log.Fatal(err)
		}
	})
	// One run of the bad order is plenty.
	t0 := time.Now()
	if _, err := eng.QueryWith(lagen.SMMQuery, core.QueryOptions{ForcedOrder: []string{iV, jV, kV}}); err != nil {
		log.Fatal(err)
	}
	ijk := time.Since(t0)
	fmt.Printf("order [i,k,j] (cost 10, relaxed union): %v\n", ikj.Round(time.Millisecond))
	fmt.Printf("order [i,j,k] (cost 50):                %v (%.1fx slower)\n",
		ijk.Round(time.Millisecond), float64(ijk)/float64(ikj))
}

// ---- Figure 5c ------------------------------------------------------------------

func fig5c() {
	sf := sfList()[len(sfList())-1]
	fmt.Printf("\n=== Figure 5c — TPC-H Q5 attribute orders (SF %g)\n", sf)
	eng := tpchEngine(sf)
	p, _, err := eng.Prepare(tpch.Queries["q5"], core.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	bag := p.GHD.Root.Bag
	label := map[string]string{"orderkey": "o", "custkey": "c", "suppkey": "s", "nationkey": "n"}
	orders := [][]string{
		{"orderkey", "custkey", "nationkey", "suppkey"},
		{"orderkey", "nationkey", "suppkey", "custkey"},
		{"custkey", "orderkey", "nationkey", "suppkey"},
		{"nationkey", "suppkey", "custkey", "orderkey"},
	}
	fmt.Printf("%-12s %6s %12s\n", "order", "cost", "runtime")
	for _, ord := range orders {
		if len(ord) != len(bag) {
			continue
		}
		_, ch, err := eng.Prepare(tpch.Queries["q5"], core.QueryOptions{ForcedOrder: ord})
		if err != nil {
			log.Fatal(err)
		}
		cost := 0.0
		for _, o := range ch.Orders {
			if len(o.Attrs) == len(ord) && o.Attrs[0] == ord[0] {
				cost = o.Cost
			}
		}
		d := best(func() {
			if _, err := eng.QueryWith(tpch.Queries["q5"], core.QueryOptions{ForcedOrder: ord}); err != nil {
				log.Fatal(err)
			}
		})
		short := make([]string, len(ord))
		for i, v := range ord {
			short[i] = label[v]
		}
		fmt.Printf("%-12s %6.0f %12s\n", strings.Join(short, ","), cost, d.Round(time.Microsecond))
	}
}

// ---- Figure 6 ----------------------------------------------------------------------

func fig6() {
	fmt.Printf("\n=== Figure 6 — voter classification (%d voters)\n", *flagVoters)
	cat := storage.NewCatalog()
	if err := voter.Generate(cat, *flagVoters, 500, 2026); err != nil {
		log.Fatal(err)
	}
	if err := cat.Freeze(); err != nil {
		log.Fatal(err)
	}
	pipelines := []struct {
		run func(*storage.Catalog, int) (voter.Phases, error)
	}{
		{voter.RunUnified}, {voter.RunMonetSklearn}, {voter.RunPandasSklearn}, {voter.RunSpark},
	}
	fmt.Printf("%-18s %10s %10s %10s %10s\n", "system", "sql", "encode", "train", "total")
	var baseTotal time.Duration
	for i, pl := range pipelines {
		var bestPh voter.Phases
		bestTotal := time.Duration(1<<62 - 1)
		for r := 0; r < timedRuns(); r++ {
			ph, err := pl.run(cat, 0)
			if err != nil {
				log.Fatal(err)
			}
			if ph.Total() < bestTotal {
				bestTotal = ph.Total()
				bestPh = ph
			}
		}
		if i == 0 {
			baseTotal = bestPh.Total()
		}
		fmt.Printf("%-18s %10s %10s %10s %10s (%.1fx)\n", bestPh.System,
			bestPh.SQL.Round(time.Microsecond), bestPh.Encode.Round(time.Microsecond),
			bestPh.Train.Round(time.Microsecond), bestPh.Total().Round(time.Microsecond),
			float64(bestPh.Total())/float64(baseTotal))
	}
}

// ---- helpers --------------------------------------------------------------------------

func rel(d, base time.Duration) float64 { return float64(d) / float64(base) }

func mustQ(eng *core.Engine, sql string) {
	res, err := eng.Query(sql)
	if err != nil {
		log.Fatal(err)
	}
	if *flagStats && res.Stats != nil && !statsSeen[sql] {
		statsSeen[sql] = true
		fmt.Printf("  stats: %s\n", res.Stats.Line())
	}
}

func mustRows(r *pairwise.Rows, err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustRows2(r *colstore.Rows, err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustSpMV(y map[int64]float64, err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// timedOrOOM returns -1 when the engine exceeds its memory budget.
func timedOrOOM(f func() error) time.Duration {
	t0 := time.Now()
	if err := f(); err != nil {
		return -1
	}
	return time.Since(t0)
}

func toCSR(m *storage.Table, n int) *blas.CSR {
	i32 := make([]int32, m.NumRows)
	j32 := make([]int32, m.NumRows)
	for k := 0; k < m.NumRows; k++ {
		i32[k] = int32(m.Col("i").Ints[k])
		j32[k] = int32(m.Col("j").Ints[k])
	}
	coo, err := blas.NewCOO(n, n, i32, j32, m.Col("v").Floats)
	if err != nil {
		log.Fatal(err)
	}
	return blas.CompressCOO(coo)
}
