// Command iocheck is a focused errcheck for the durability code: it
// walks the given package directories and reports every io/os call
// whose error result is discarded — a bare statement, a defer, or a
// blank assignment. In a WAL or snapshot writer, an ignored short
// write, fsync, rename or truncate error is a silent durability hole,
// so the build gates on zero findings:
//
//	go run ./cmd/iocheck ./internal/wal ./internal/snapshot
//
// The check is syntactic (method-name based), which is exactly right
// for its narrow target: these packages funnel all persistence through
// a known set of file-mutating calls. `defer f.Close()` is allowed on
// its own — closing a read handle is not a durability event — but a
// deferred Sync/Truncate/Rename, or any bare mutating call, fails.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// mutating lists method/function names whose error return must be
// consumed: they change file or directory state.
var mutating = map[string]bool{
	"Write":       true,
	"WriteAt":     true,
	"WriteString": true,
	"WriteFile":   true,
	"Sync":        true,
	"Truncate":    true,
	"Flush":       true,
	"Rename":      true,
	"Remove":      true,
	"RemoveAll":   true,
	"Mkdir":       true,
	"MkdirAll":    true,
	"Chmod":       true,
}

// closers may be deferred without consuming the error (read-path
// cleanup), but a bare Close statement still fails — on a written
// file, Close is where delayed write errors surface.
var closers = map[string]bool{"Close": true}

type finding struct {
	pos  token.Position
	call string
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: iocheck <pkg-dir> [...]")
		os.Exit(2)
	}
	var findings []finding
	for _, dir := range os.Args[1:] {
		fs, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iocheck: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Printf("%s: discarded error from %s\n", f.pos, f.call)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "iocheck: %d discarded io error(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Printf("iocheck: %s clean\n", strings.Join(os.Args[1:], " "))
}

func checkDir(dir string) ([]finding, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var findings []finding
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		findings = append(findings, checkFile(fset, file)...)
	}
	return findings, nil
}

func checkFile(fset *token.FileSet, file *ast.File) []finding {
	var findings []finding
	report := func(n ast.Node, call *ast.CallExpr) {
		findings = append(findings, finding{
			pos:  fset.Position(n.Pos()),
			call: callName(call),
		})
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, name := riskyCall(s.X); call != nil && (mutating[name] || closers[name]) {
				report(s, call)
			}
		case *ast.DeferStmt:
			if name := calleeName(s.Call); mutating[name] {
				report(s, s.Call)
			}
		case *ast.GoStmt:
			if name := calleeName(s.Call); mutating[name] || closers[name] {
				report(s, s.Call)
			}
		case *ast.AssignStmt:
			// `_ = f.Sync()` (all-blank LHS) discards the error just as
			// thoroughly as a bare statement.
			if len(s.Rhs) != 1 {
				return true
			}
			call, name := riskyCall(s.Rhs[0])
			if call == nil || !(mutating[name] || closers[name]) {
				return true
			}
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
					return true
				}
			}
			report(s, call)
		}
		return true
	})
	return findings
}

// riskyCall unwraps expr to a call and returns it with its callee
// name, or nil when it is not a call.
func riskyCall(expr ast.Expr) (*ast.CallExpr, string) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	return call, calleeName(call)
}

// calleeName extracts the method or function name being called.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fn.Sel.Name
	case *ast.Ident:
		return fn.Name
	}
	return ""
}

// callName renders the call for the report ("f.Sync", "os.Rename").
func callName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		if x, ok := fn.X.(*ast.Ident); ok {
			return x.Name + "." + fn.Sel.Name
		}
		return "(...)." + fn.Sel.Name
	case *ast.Ident:
		return fn.Name
	}
	return "call"
}
