// Command profq captures a CPU profile of one benchmark query (dev tool).
package main

import (
	"log"
	"os"
	"runtime/pprof"

	"repro/internal/core"
	"repro/internal/tpch"
)

func main() {
	q := "q8"
	if len(os.Args) > 1 {
		q = os.Args[1]
	}
	eng := core.New()
	if _, err := tpch.Populate(eng.Catalog(), 0.01, 2026); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Query(tpch.Queries[q]); err != nil {
		log.Fatal(err)
	}
	f, _ := os.Create("/tmp/q.prof")
	pprof.StartCPUProfile(f)
	for i := 0; i < 60; i++ {
		if _, err := eng.Query(tpch.Queries[q]); err != nil {
			log.Fatal(err)
		}
	}
	pprof.StopCPUProfile()
	f.Close()
}
