// Command benchdiff compares two lhbench -json measurement files (the
// committed baseline vs a fresh run), reporting per-query time and
// allocation deltas plus the geometric-mean time ratio — an in-repo,
// dependency-free stand-in for benchstat.
//
//	go run ./cmd/benchdiff BENCH_tpch.json /tmp/bench_new.json
//
// A ratio < 1.00x means the new run is faster. With -max-ratio set,
// benchdiff exits nonzero when the geomean exceeds it (CI regression
// gate); -max-query-ratio additionally gates every individual query, so
// an aggregate win cannot smuggle in a single-query regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
)

type rec struct {
	Name     string `json:"name"`
	Runs     int    `json:"runs"`
	MinNs    int64  `json:"min_ns"`
	MeanNs   int64  `json:"mean_ns"`
	Rows     int    `json:"rows"`
	Dispatch string `json:"dispatch"`
	// Paths lists the per-GHD-node access paths of the hybrid executor
	// (pre-order), e.g. ["binary"] or ["wcoj","binary"].
	Paths      []string `json:"paths,omitempty"`
	AllocPerOp int64    `json:"alloc_bytes_per_op"`
	// Note marks annotation rows (e.g. lhbench -suite ingest-ab sync
	// policy measurements); pseudo-records are named with a leading "_"
	// and excluded from the diff and the regression gates.
	Note string `json:"note,omitempty"`
}

var (
	flagMaxRatio      = flag.Float64("max-ratio", 0, "fail (exit 1) when the geomean time ratio new/old exceeds this (0 = report only)")
	flagMaxQueryRatio = flag.Float64("max-query-ratio", 0, "fail (exit 1) when ANY single query's time ratio new/old exceeds this (0 = report only)")
)

func load(path string) map[string]rec {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var rs []rec
	if err := json.Unmarshal(data, &rs); err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	m := make(map[string]rec, len(rs))
	order = order[:0]
	skipped := 0
	for _, r := range rs {
		// "_" names are annotations (ingest-ab sync measurements etc.),
		// not comparable query timings — keep them out of the gate.
		if len(r.Name) > 0 && r.Name[0] == '_' {
			skipped++
			continue
		}
		if _, dup := m[r.Name]; !dup {
			order = append(order, r.Name)
		}
		m[r.Name] = r
	}
	if skipped > 0 {
		fmt.Printf("%s: skipped %d annotation record(s) (_-prefixed)\n", path, skipped)
	}
	return m
}

// order preserves the baseline file's row order for stable output.
var order []string

func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

func fmtB(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func main() {
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-ratio R] old.json new.json")
		os.Exit(2)
	}
	oldM := load(flag.Arg(0))
	oldOrder := append([]string(nil), order...)
	newM := load(flag.Arg(1))

	fmt.Printf("%-16s %12s %12s %8s   %10s %10s %8s\n",
		"name", "old time", "new time", "ratio", "old alloc", "new alloc", "ratio")
	logSum, logN := 0.0, 0
	var aOld, aNew int64
	var worst []string
	for _, name := range oldOrder {
		o := oldM[name]
		n, ok := newM[name]
		if !ok {
			fmt.Printf("%-16s %12s %12s %8s   (missing from new run)\n", name, fmtNs(o.MinNs), "-", "-")
			continue
		}
		tRatio := float64(n.MinNs) / float64(o.MinNs)
		logSum += math.Log(tRatio)
		logN++
		if *flagMaxQueryRatio > 0 && tRatio > *flagMaxQueryRatio {
			worst = append(worst, fmt.Sprintf("%s %.3fx", name, tRatio))
		}
		aOld += o.AllocPerOp
		aNew += n.AllocPerOp
		aStr := "-"
		if o.AllocPerOp > 0 {
			aStr = fmt.Sprintf("%7.2fx", float64(n.AllocPerOp)/float64(o.AllocPerOp))
		}
		fmt.Printf("%-16s %12s %12s %7.2fx   %10s %10s %8s\n",
			name, fmtNs(o.MinNs), fmtNs(n.MinNs), tRatio,
			fmtB(o.AllocPerOp), fmtB(n.AllocPerOp), aStr)
	}
	for _, name := range orderOf(newM, oldM) {
		fmt.Printf("%-16s %12s %12s %8s   (new measurement)\n", name, "-", fmtNs(newM[name].MinNs), "-")
	}
	if logN == 0 {
		log.Fatal("no common measurements")
	}
	geo := math.Exp(logSum / float64(logN))
	fmt.Printf("\ngeomean time ratio new/old: %.3fx over %d queries", geo, logN)
	if geo < 1 {
		fmt.Printf("  (%.1f%% faster)", (1-geo)*100)
	} else if geo > 1 {
		fmt.Printf("  (%.1f%% slower)", (geo-1)*100)
	}
	fmt.Println()
	if aOld > 0 {
		fmt.Printf("total alloc/op: %s -> %s (%.2fx)\n", fmtB(aOld), fmtB(aNew), float64(aNew)/float64(aOld))
	}
	fail := false
	if *flagMaxRatio > 0 && geo > *flagMaxRatio {
		fmt.Fprintf(os.Stderr, "FAIL: geomean %.3fx exceeds -max-ratio %.3fx\n", geo, *flagMaxRatio)
		fail = true
	}
	for _, w := range worst {
		fmt.Fprintf(os.Stderr, "FAIL: query %s exceeds -max-query-ratio %.3fx\n", w, *flagMaxQueryRatio)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}

// orderOf lists names present in a but not in b, in a's file order.
func orderOf(a, b map[string]rec) []string {
	var out []string
	for _, name := range order {
		if _, ok := b[name]; !ok {
			out = append(out, name)
		}
	}
	_ = a
	return out
}
