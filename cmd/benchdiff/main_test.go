package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestLoadSkipsAnnotationRecords pins the "_"-prefix convention: the
// ingest-ab and approx-ab suites annotate the committed baseline with
// "_ingest/*" and "_approx/*" pseudo-records, and load must keep every
// one of them out of the diff and the regression gates.
func TestLoadSkipsAnnotationRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	data := `[
  {"name": "q1/sf0.01", "runs": 15, "min_ns": 1000, "alloc_bytes_per_op": 64},
  {"name": "_ingest/mem", "runs": 15, "min_ns": 1, "alloc_bytes_per_op": 0, "note": "sync A/B"},
  {"name": "_approx/distinct_part", "runs": 15, "min_ns": 2, "alloc_bytes_per_op": 0, "note": "approx A/B"},
  {"name": "q6/sf0.01", "runs": 15, "min_ns": 2000, "alloc_bytes_per_op": 128}
]`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	m := load(path)
	if len(m) != 2 {
		t.Fatalf("load kept %d records, want 2 (annotations must be skipped): %v", len(m), m)
	}
	for _, name := range []string{"q1/sf0.01", "q6/sf0.01"} {
		if _, ok := m[name]; !ok {
			t.Errorf("query record %q missing after load", name)
		}
	}
	for _, name := range []string{"_ingest/mem", "_approx/distinct_part"} {
		if _, ok := m[name]; ok {
			t.Errorf("annotation record %q leaked into the comparable set", name)
		}
	}
	if len(order) != 2 || order[0] != "q1/sf0.01" || order[1] != "q6/sf0.01" {
		t.Errorf("order = %v, want the two query records in file order", order)
	}
}
