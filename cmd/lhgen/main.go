// Command lhgen writes the benchmark datasets to delimited files so
// they can be loaded into other systems (or re-loaded with
// Engine.LoadDelimited):
//
//	lhgen -out /tmp/tpch -dataset tpch -sf 0.01
//	lhgen -out /tmp/la   -dataset matrix -profile harbor -la 0.25
//	lhgen -out /tmp/vote -dataset voter -voters 100000
//
// TPC-H tables use '|' (the dbgen .tbl convention); others use ','.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/lagen"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/voter"
)

func main() {
	out := flag.String("out", ".", "output directory")
	dataset := flag.String("dataset", "tpch", "tpch, matrix, voter")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	la := flag.Float64("la", 0.25, "matrix scale")
	profile := flag.String("profile", "harbor", "matrix profile")
	voters := flag.Int("voters", 100000, "voter rows")
	seed := flag.Int64("seed", 2026, "generator seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	cat := storage.NewCatalog()
	var delim byte = ','
	switch *dataset {
	case "tpch":
		delim = '|'
		if _, err := tpch.Populate(cat, *sf, *seed); err != nil {
			log.Fatal(err)
		}
	case "matrix":
		spec, err := lagen.Profile(*profile, *la)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := lagen.LoadSparse(cat, spec, *seed); err != nil {
			log.Fatal(err)
		}
	case "voter":
		if err := voter.Generate(cat, *voters, 500, *seed); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}

	ext := ".csv"
	if delim == '|' {
		ext = ".tbl"
	}
	for _, name := range cat.Tables() {
		t := cat.Table(name)
		path := filepath.Join(*out, name+ext)
		if err := writeTable(t, path, delim); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, t.NumRows)
	}
}

func writeTable(t *storage.Table, path string, delim byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	for r := 0; r < t.NumRows; r++ {
		for ci, col := range t.Cols {
			if ci > 0 {
				w.WriteByte(delim)
			}
			switch col.Def.Kind {
			case storage.Int64:
				w.WriteString(strconv.FormatInt(col.Ints[r], 10))
			case storage.Date:
				w.WriteString(sqlparse.DaysToDate(int32(col.Ints[r])))
			case storage.Float64:
				w.WriteString(strconv.FormatFloat(col.Floats[r], 'g', -1, 64))
			case storage.String:
				w.WriteString(col.Strs[r])
			}
		}
		w.WriteByte('\n')
	}
	return w.Flush()
}
