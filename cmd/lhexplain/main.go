// Command lhexplain prints the compiled plan (hypergraph, GHD,
// attribute orders with §V cost terms) of the paper's TPC-H benchmark
// queries against a small generated database.
//
// Usage: lhexplain [query ...]   (defaults to all seven)
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/tpch"
)

func main() {
	eng := core.New()
	if _, err := tpch.Populate(eng.Catalog(), 0.005, 2026); err != nil {
		log.Fatal(err)
	}
	names := os.Args[1:]
	if len(names) == 0 {
		names = tpch.QueryNames
	}
	for _, q := range names {
		sql, ok := tpch.Queries[q]
		if !ok {
			log.Fatalf("unknown query %q", q)
		}
		s, err := eng.Explain(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("=== " + q)
		fmt.Print(s)
	}
}
