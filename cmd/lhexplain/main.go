// Command lhexplain prints the compiled plan (hypergraph, GHD,
// attribute orders with §V cost terms) of the paper's TPC-H benchmark
// queries against a small generated database.
//
// Usage: lhexplain [-analyze] [query ...]   (defaults to all seven)
//
// With -analyze the query is also executed and the plan is followed by
// measured phase timings and per-kernel intersection counts (the
// EXPLAIN ANALYZE block).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/tpch"
)

func main() {
	analyze := flag.Bool("analyze", false, "execute the query and include measured stats")
	flag.Parse()
	eng := core.New()
	if _, err := tpch.Populate(eng.Catalog(), 0.005, 2026); err != nil {
		log.Fatal(err)
	}
	names := flag.Args()
	if len(names) == 0 {
		names = tpch.QueryNames
	}
	for _, q := range names {
		sql, ok := tpch.Queries[q]
		if !ok {
			log.Fatalf("unknown query %q", q)
		}
		var s string
		var err error
		if *analyze {
			s, err = eng.ExplainAnalyze(sql)
		} else {
			s, err = eng.Explain(sql)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("=== " + q)
		fmt.Print(s)
	}
}
