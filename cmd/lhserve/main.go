// Command lhserve runs a LevelHeaded engine behind an HTTP server: a
// SQL-over-HTTP endpoint plus the full telemetry surface (Prometheus
// /metrics, live query registry, trace dumps, pprof). It is the
// "monitoring a running engine" entry point:
//
//	lhserve -gen tpch -sf 0.05                 # serve on 127.0.0.1:8080
//	lhserve -gen matrix -la 0.1 -load 4        # plus 4 query-replay workers
//	lhserve -gen matrix -http 127.0.0.1:0 -smoke
//
//	curl localhost:8080/metrics                # Prometheus text format
//	curl localhost:8080/debug/statements       # per-fingerprint statement stats
//	curl localhost:8080/debug/queries          # in-flight queries (JSON)
//	curl localhost:8080/debug/trace/           # retained trace IDs
//	curl localhost:8080/debug/trace/3          # chrome://tracing JSON
//	curl localhost:8080/debug/trace/3/tree     # indented span tree
//	curl -d 'SELECT count(*) AS c FROM matrix' localhost:8080/query
//	curl -d '{"i": 7, "j": 9, "v": 0.5}' 'localhost:8080/ingest?table=matrix'
//	curl -d '7|9|0.5' 'localhost:8080/ingest?table=matrix&format=delim&delim=|'
//
// Ingested rows are visible to the next query without downtime; the
// engine folds them through delta stores and epoch snapshots, and
// -auto-compact N merges them into base storage in the background once
// a table's backlog reaches N rows. /debug/queries reports per-table
// delta backlog and last-compaction epoch alongside in-flight queries.
//
// -data-dir DIR makes ingestion durable: every acked append is
// write-ahead logged before it commits (fsync cadence set by -sync),
// compactions persist atomic snapshots, and a restarted lhserve
// pointed at the same dir recovers snapshot + WAL tails instead of
// regenerating -gen data. /readyz reports recovery state; an
// X-Batch-Id header on /ingest makes client retries idempotent across
// crashes. SIGTERM drains queries and fsyncs all WALs before exit.
//
// -slowlog FILE (with -slow THRESHOLD) appends one JSON line per query
// slower than the threshold. -smoke runs a self-test: execute queries,
// scrape /metrics through the real listener, and exit nonzero on any
// failure (the CI hook).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/lagen"
	"repro/internal/qerr"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/tpch"
	"repro/internal/voter"
	"repro/internal/wal"
)

var (
	flagGen     = flag.String("gen", "matrix", "dataset to generate: tpch, matrix, voter")
	flagSF      = flag.Float64("sf", 0.01, "TPC-H scale factor")
	flagLA      = flag.Float64("la", 0.1, "matrix scale")
	flagHTTP    = flag.String("http", "127.0.0.1:8080", "serve address (port 0 picks a free one)")
	flagSlowLog = flag.String("slowlog", "", "append slow-query JSON lines to this file")
	flagSlow    = flag.Duration("slow", 100*time.Millisecond, "slow-query threshold (0 logs every query)")
	flagLoad    = flag.Int("load", 0, "background query-replay workers (keeps the debug endpoints lively)")
	flagSmoke   = flag.Bool("smoke", false, "self-test: run queries, scrape /metrics, exit")

	flagAutoCompact = flag.Int("auto-compact", 0, "background-compact when a table's delta backlog reaches this many rows (0 = manual)")

	flagDataDir = flag.String("data-dir", "", "durability directory: WAL + snapshots live here and are recovered on startup (empty = in-memory only)")
	flagSync    = flag.String("sync", "group", "WAL sync policy: always, group[:dur], interval[:dur], none (with -data-dir)")

	flagMaxConc   = flag.Int("max-concurrency", 0, "max concurrently executing queries (0 = unlimited)")
	flagQueue     = flag.Int("queue-depth", 0, "admission wait-queue depth (with -max-concurrency)")
	flagMemBudget = flag.Int64("mem-budget", 0, "per-query memory budget in bytes (0 = unlimited)")
	flagMemSoft   = flag.Int64("mem-soft-limit", 0, "engine-wide soft memory limit in bytes (0 = unlimited)")
	flagDrain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
)

func main() {
	flag.Parse()

	var opts []core.Option
	if *flagSlowLog != "" {
		f, err := os.OpenFile(*flagSlowLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		opts = append(opts, core.WithSlowQueryLog(f, *flagSlow))
	}
	if *flagMaxConc > 0 {
		opts = append(opts, core.WithMaxConcurrency(*flagMaxConc), core.WithQueueDepth(*flagQueue))
	}
	if *flagMemBudget > 0 {
		opts = append(opts, core.WithMemoryBudget(*flagMemBudget))
	}
	if *flagMemSoft > 0 {
		opts = append(opts, core.WithMemorySoftLimit(*flagMemSoft))
	}
	if *flagAutoCompact > 0 {
		opts = append(opts, core.WithAutoCompact(*flagAutoCompact))
	}
	if *flagDataDir != "" {
		policy, err := wal.ParsePolicy(*flagSync)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, core.WithDurability(*flagDataDir, policy))
	}
	eng := core.New(opts...)
	if err := eng.RecoveryError(); err != nil {
		// Recovery problems degrade, never abort: the engine is up with
		// whatever state survived, and /readyz carries the error.
		log.Printf("lhserve: recovery degraded: %v", err)
	}

	// The listener comes up before populate so /readyz can answer "not
	// yet" (and /metrics is scrapable) during a long generate/recover.
	var ready atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if !ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		resp := map[string]interface{}{
			"ready":     ready.Load(),
			"durable":   *flagDataDir != "",
			"recovered": eng.Recovered(),
		}
		if err := eng.RecoveryError(); err != nil {
			resp["recovery_error"] = err.Error()
		}
		json.NewEncoder(w).Encode(resp)
	})
	mux.Handle("/", telemetry.Handler(eng.Telemetry()))
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		handleQuery(eng, w, r)
	})
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		handleIngest(eng, w, r)
	})
	// Override the telemetry handler's /debug/queries so the payload
	// also carries per-table delta/compaction state.
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]interface{}{
			"queries": eng.Telemetry().Registry.List(),
			"tables":  eng.TablesStatus(),
		})
	})
	ln, err := net.Listen("tcp", *flagHTTP)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	mix := populate(eng)
	if *flagDataDir != "" && !eng.Recovered() {
		// A fresh populate goes through the bulk SetColumnData path,
		// which bypasses the WAL by design; snapshot it now so the
		// generated data survives a crash too.
		if err := eng.Compact(context.Background()); err != nil {
			log.Fatal("initial snapshot: ", err)
		}
		fmt.Printf("lhserve: initial snapshot written to %s\n", *flagDataDir)
	}
	ready.Store(true)
	fmt.Printf("lhserve: engine up — metrics at http://%s/metrics, queries via POST http://%s/query\n", addr, addr)

	if *flagSmoke {
		if err := smoke(eng, addr, mix); err != nil {
			log.Fatal("smoke: ", err)
		}
		fmt.Println("smoke: ok")
		return
	}

	stop := make(chan struct{})
	for w := 0; w < *flagLoad; w++ {
		go replay(eng, mix, w, stop)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stop)

	// Graceful shutdown: stop admitting (new queries shed with 429),
	// drain in-flight queries up to the deadline, cancel stragglers via
	// the live query registry, then stop the HTTP server.
	fmt.Printf("lhserve: shutting down (drain %v)\n", *flagDrain)
	eng.BeginShutdown()
	ctx, cancel := context.WithTimeout(context.Background(), *flagDrain)
	if n := eng.Drain(ctx); n > 0 {
		fmt.Printf("lhserve: force-cancelled %d stragglers\n", n)
	}
	cancel()
	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	srv.Shutdown(sctx)
	scancel()
	fmt.Println("lhserve: bye")
}

// populate generates the requested dataset and returns the query mix
// the replay workers cycle through. When startup recovery (-data-dir)
// restored persisted tables, generation is skipped — the recovered
// data IS the dataset — and only the query mix is returned.
func populate(eng *core.Engine) []string {
	if eng.Recovered() {
		fmt.Printf("lhserve: recovered persisted state from %s, skipping -gen %s populate\n", *flagDataDir, *flagGen)
		return queryMix()
	}
	switch *flagGen {
	case "tpch":
		sz, err := tpch.Populate(eng.Catalog(), *flagSF, 2026)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("generated TPC-H SF %g (%d lineitems)\n", *flagSF, sz.Lineitem)
		return queryMix()
	case "matrix":
		spec, err := lagen.Profile("harbor", *flagLA)
		if err != nil {
			log.Fatal(err)
		}
		nnz, err := lagen.LoadSparse(eng.Catalog(), spec, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("generated %s-sim matrix: n=%d nnz=%d\n", spec.Name, spec.N, nnz)
		return queryMix()
	case "voter":
		if err := voter.Generate(eng.Catalog(), 100000, 500, 2026); err != nil {
			log.Fatal(err)
		}
		fmt.Println("generated voter dataset (tables: voters, precincts)")
		return queryMix()
	default:
		log.Fatalf("unknown dataset %q", *flagGen)
		return nil
	}
}

// queryMix returns the replay mix for -gen without generating data
// (the recovered-startup path).
func queryMix() []string {
	switch *flagGen {
	case "tpch":
		mix := make([]string, 0, len(tpch.QueryNames))
		for _, name := range tpch.QueryNames {
			mix = append(mix, tpch.Queries[name])
		}
		return mix
	case "matrix":
		return []string{lagen.SMVQuery, lagen.SMMQuery}
	case "voter":
		return []string{`SELECT count(*) AS n FROM voters`}
	default:
		log.Fatalf("unknown dataset %q", *flagGen)
		return nil
	}
}

// replay loops over the query mix until stop closes; worker w starts at
// offset w so concurrent workers exercise different dispatch classes.
func replay(eng *core.Engine, mix []string, w int, stop chan struct{}) {
	for i := w; ; i++ {
		select {
		case <-stop:
			return
		default:
		}
		if _, err := eng.Query(mix[i%len(mix)]); err != nil {
			// Shed or aborted queries are expected under governance; back
			// off briefly and keep replaying so the load stays realistic.
			var oe *qerr.OverloadedError
			if errors.As(err, &oe) {
				time.Sleep(oe.RetryAfter)
				continue
			}
			log.Printf("replay: %v", err)
			return
		}
	}
}

// queryResponse is the /query JSON payload: columns, row-major values,
// and the headline stats.
type queryResponse struct {
	Columns  []string        `json:"columns"`
	Rows     [][]interface{} `json:"rows"`
	NumRows  int             `json:"num_rows"`
	Dispatch string          `json:"dispatch,omitempty"`
	TotalNs  int64           `json:"total_ns"`
	// Approximate-tier contract (X-Approx-OK requests): Approx marks an
	// estimated answer, ErrorBound/Confidence its accuracy contract,
	// Degraded that the tier was entered because the engine was
	// overloaded (the request would otherwise have been a 429).
	Approx     bool    `json:"approx,omitempty"`
	ErrorBound float64 `json:"error_bound,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
	Degraded   bool    `json:"degraded,omitempty"`
}

// maxHTTPRows bounds the /query payload; the row count still reports
// the full result size.
const maxHTTPRows = 1000

func handleQuery(eng *core.Engine, w http.ResponseWriter, r *http.Request) {
	var sql string
	switch r.Method {
	case http.MethodGet:
		sql = r.URL.Query().Get("sql")
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sql = strings.TrimSpace(string(body))
		// Accept either raw SQL or a {"sql": "..."} JSON object.
		if strings.HasPrefix(sql, "{") {
			var req struct {
				SQL string `json:"sql"`
			}
			if err := json.Unmarshal(body, &req); err != nil {
				http.Error(w, "bad JSON body: "+err.Error(), http.StatusBadRequest)
				return
			}
			sql = req.SQL
		}
	default:
		http.Error(w, "GET ?sql= or POST a query", http.StatusMethodNotAllowed)
		return
	}
	if sql == "" {
		http.Error(w, "empty query", http.StatusBadRequest)
		return
	}
	var qo core.QueryOptions
	// X-Approx-OK opts the request into the approximate tier: eligible
	// aggregates may be answered from sketches/samples with an error
	// bound, and under overload the query degrades to the tier instead
	// of shedding with 429 (exact-only requests keep the 429 contract).
	if v := r.Header.Get("X-Approx-OK"); v != "" && v != "0" && !strings.EqualFold(v, "false") {
		qo.ApproxOK = true
	}
	res, err := eng.QueryWithContext(r.Context(), sql, qo)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	resp := queryResponse{NumRows: res.NumRows}
	if res.Stats != nil {
		resp.Dispatch = res.Stats.Dispatch
		resp.TotalNs = int64(res.Stats.Phases.Total)
		resp.Approx = res.Stats.Approx
		resp.ErrorBound = res.Stats.ErrorBound
		resp.Confidence = res.Stats.Confidence
		resp.Degraded = res.Stats.Degraded
	}
	n := res.NumRows
	if n > maxHTTPRows {
		n = maxHTTPRows
	}
	for _, c := range res.Cols {
		resp.Columns = append(resp.Columns, c.Name)
	}
	resp.Rows = make([][]interface{}, n)
	for i := 0; i < n; i++ {
		row := make([]interface{}, len(res.Cols))
		for j, c := range res.Cols {
			switch {
			case c.I64 != nil:
				row[j] = c.I64[i]
			case c.Str != nil:
				row[j] = c.Str[i]
			default:
				row[j] = c.F64[i]
			}
		}
		resp.Rows[i] = row
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// maxIngestBody bounds one /ingest request body.
const maxIngestBody = 32 << 20

// ingestResponse is the /ingest JSON payload.
type ingestResponse struct {
	Table     string `json:"table"`
	Rows      int    `json:"rows"`
	Duplicate bool   `json:"duplicate,omitempty"`
}

// handleIngest appends rows to a table: POST /ingest?table=T with an
// NDJSON body (default: one JSON object keyed by column name, or one
// JSON array in schema order, per line) or &format=delim&delim=, with
// delimiter-separated text lines. Admission control applies — an
// overloaded engine sheds the batch with 429 + Retry-After. Appended
// rows are visible to the next query; compaction happens in the
// background (see -auto-compact) or via the engine API.
//
// An optional X-Batch-Id header makes the request idempotent: the id
// is logged in the WAL alongside the rows, so a client retrying after
// a 5xx/timeout gets {"duplicate": true} instead of double-ingesting —
// including retries that land after a crash and recovery (-data-dir).
func handleIngest(eng *core.Engine, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	table := r.URL.Query().Get("table")
	if table == "" {
		http.Error(w, "missing ?table=", http.StatusBadRequest)
		return
	}
	batchID := r.Header.Get("X-Batch-Id")
	body := io.LimitReader(r.Body, maxIngestBody)
	var n int
	var dup bool
	var err error
	switch format := r.URL.Query().Get("format"); format {
	case "", "ndjson":
		tab := eng.Catalog().Table(table)
		if tab == nil {
			http.Error(w, fmt.Sprintf("unknown table %q", table), http.StatusBadRequest)
			return
		}
		var rows [][]interface{}
		rows, err = decodeNDJSON(&tab.Schema, body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n, dup, err = eng.IngestBatch(r.Context(), table, batchID, rows)
	case "delim":
		if batchID != "" {
			http.Error(w, "X-Batch-Id requires the ndjson format", http.StatusBadRequest)
			return
		}
		delim := r.URL.Query().Get("delim")
		if delim == "" {
			delim = ","
		}
		if len(delim) != 1 {
			http.Error(w, "delim must be a single byte", http.StatusBadRequest)
			return
		}
		n, err = eng.IngestDelimited(r.Context(), table, body, delim[0])
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (want ndjson or delim)", format), http.StatusBadRequest)
		return
	}
	if err != nil {
		writeQueryError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ingestResponse{Table: table, Rows: n, Duplicate: dup})
}

// decodeNDJSON converts newline-delimited JSON values into rows for
// IngestRows. Objects are keyed by column name; arrays follow schema
// order. Numbers decode exactly (json.Number), so int64 keys survive
// beyond float53 precision.
func decodeNDJSON(schema *storage.Schema, r io.Reader) ([][]interface{}, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var rows [][]interface{}
	for line := 1; ; line++ {
		var raw interface{}
		if err := dec.Decode(&raw); err == io.EOF {
			return rows, nil
		} else if err != nil {
			return nil, fmt.Errorf("ingest row %d: %w", line, err)
		}
		row := make([]interface{}, len(schema.Cols))
		switch v := raw.(type) {
		case []interface{}:
			if len(v) != len(schema.Cols) {
				return nil, fmt.Errorf("ingest row %d: %d values for %d columns", line, len(v), len(schema.Cols))
			}
			for i := range v {
				cv, err := ingestValue(&schema.Cols[i], v[i])
				if err != nil {
					return nil, fmt.Errorf("ingest row %d: %w", line, err)
				}
				row[i] = cv
			}
		case map[string]interface{}:
			if len(v) != len(schema.Cols) {
				return nil, fmt.Errorf("ingest row %d: %d fields for %d columns", line, len(v), len(schema.Cols))
			}
			for i := range schema.Cols {
				def := &schema.Cols[i]
				fv, ok := v[def.Name]
				if !ok {
					return nil, fmt.Errorf("ingest row %d: missing column %q", line, def.Name)
				}
				cv, err := ingestValue(def, fv)
				if err != nil {
					return nil, fmt.Errorf("ingest row %d: %w", line, err)
				}
				row[i] = cv
			}
		default:
			return nil, fmt.Errorf("ingest row %d: want a JSON object or array, got %T", line, raw)
		}
		rows = append(rows, row)
	}
}

// ingestValue maps one decoded JSON value onto the column's kind.
func ingestValue(def *storage.ColumnDef, v interface{}) (interface{}, error) {
	switch def.Kind {
	case storage.Int64, storage.Date:
		if num, ok := v.(json.Number); ok {
			i, err := strconv.ParseInt(num.String(), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("column %s: %q is not an integer", def.Name, num)
			}
			return i, nil
		}
		if s, ok := v.(string); ok && def.Kind == storage.Date {
			return s, nil // "YYYY-MM-DD", parsed by storage
		}
		return nil, fmt.Errorf("column %s: want integer, got %T", def.Name, v)
	case storage.Float64:
		if num, ok := v.(json.Number); ok {
			f, err := num.Float64()
			if err != nil {
				return nil, fmt.Errorf("column %s: %v", def.Name, err)
			}
			return f, nil
		}
		return nil, fmt.Errorf("column %s: want number, got %T", def.Name, v)
	case storage.String:
		if s, ok := v.(string); ok {
			return s, nil
		}
		return nil, fmt.Errorf("column %s: want string, got %T", def.Name, v)
	}
	return nil, fmt.Errorf("column %s: unsupported kind", def.Name)
}

// writeQueryError maps typed engine errors onto HTTP status codes:
// shed queries get 429 with a Retry-After backoff hint, resource
// exhaustion 503, contained panics 500, everything else (parse/plan/
// user errors) 400.
func writeQueryError(w http.ResponseWriter, err error) {
	var oe *qerr.OverloadedError
	var re *qerr.ResourceExhaustedError
	var ie *qerr.InternalError
	switch {
	case errors.As(err, &oe):
		secs := int(oe.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.As(err, &re):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.As(err, &ie):
		http.Error(w, err.Error(), http.StatusInternalServerError)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// smoke executes the query mix, then validates the whole telemetry
// surface through the real listener.
func smoke(eng *core.Engine, addr string, mix []string) error {
	var rows atomic.Int64
	for _, sql := range mix {
		res, err := eng.Query(sql)
		if err != nil {
			return fmt.Errorf("query %q: %w", sql, err)
		}
		rows.Add(int64(res.NumRows))
	}
	get := func(path string) (string, error) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body), nil
	}
	readyz, err := get("/readyz")
	if err != nil {
		return err
	}
	if !strings.Contains(readyz, `"ready":true`) {
		return fmt.Errorf("/readyz not ready: %s", readyz)
	}
	metrics, err := get("/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{
		"levelheaded_queries",
		"levelheaded_query_latency_seconds_bucket",
		`le="+Inf"`,
		"levelheaded_delta_rows",
		"levelheaded_compactions_total",
		"# HELP levelheaded_queries",
		"# HELP levelheaded_query_latency_seconds",
		"levelheaded_statement_calls_total{fingerprint=",
		"levelheaded_statements_tracked",
		"levelheaded_approx_queries_total",
		"levelheaded_approx_degraded_total",
	} {
		if !strings.Contains(metrics, want) {
			return fmt.Errorf("/metrics missing %q", want)
		}
	}
	stmts, err := get("/debug/statements")
	if err != nil {
		return err
	}
	var snaps []map[string]interface{}
	if err := json.Unmarshal([]byte(stmts), &snaps); err != nil {
		return fmt.Errorf("/debug/statements is not JSON: %w", err)
	}
	if len(snaps) == 0 {
		return fmt.Errorf("/debug/statements empty after %d queries", len(mix))
	}
	for _, k := range []string{"fingerprint", "query", "calls", "total_ns"} {
		if _, ok := snaps[0][k]; !ok {
			return fmt.Errorf("/debug/statements row missing %q: %v", k, snaps[0])
		}
	}
	dbg, err := get("/debug/queries")
	if err != nil {
		return err
	}
	if !strings.Contains(dbg, `"tables"`) {
		return fmt.Errorf("/debug/queries missing per-table status: %s", dbg)
	}
	if err := smokeIngest(eng, addr); err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	if err := smokeApprox(eng, addr); err != nil {
		return fmt.Errorf("approx: %w", err)
	}
	ids := eng.Telemetry().Registry.TraceIDs()
	if len(ids) == 0 {
		return fmt.Errorf("no retained traces after %d queries", len(mix))
	}
	trace, err := get(fmt.Sprintf("/debug/trace/%d", ids[0]))
	if err != nil {
		return err
	}
	var events []map[string]interface{}
	if err := json.Unmarshal([]byte(trace), &events); err != nil {
		return fmt.Errorf("trace %d is not chrome trace JSON: %w", ids[0], err)
	}
	if len(events) == 0 {
		return fmt.Errorf("trace %d has no events", ids[0])
	}
	fmt.Printf("smoke: %d queries, %d result rows, %d metric bytes, trace %d has %d spans\n",
		len(mix), rows.Load(), len(metrics), ids[0], len(events))
	return nil
}

// smokeIngest round-trips live rows through the real listener: count a
// table, POST /ingest in both formats, and check the next query sees
// the new rows without any compaction.
func smokeIngest(eng *core.Engine, addr string) error {
	names := eng.Catalog().Tables()
	if len(names) == 0 {
		return fmt.Errorf("no tables")
	}
	table := names[0]
	tab := eng.Catalog().Table(table)
	count := func() (int64, error) {
		res, err := eng.QueryContext(context.Background(), "SELECT count(*) AS n FROM "+table)
		if err != nil {
			return 0, err
		}
		return int64(res.Col("n").F64[0]), nil
	}
	before, err := count()
	if err != nil {
		return err
	}
	mkRow := func(seed int64) []string {
		fields := make([]string, len(tab.Schema.Cols))
		for i, c := range tab.Schema.Cols {
			switch c.Kind {
			case storage.Int64:
				fields[i] = strconv.FormatInt(1_000_000+seed, 10)
			case storage.Float64:
				fields[i] = "1.5"
			case storage.String:
				fields[i] = fmt.Sprintf("smoke-%d", seed)
			case storage.Date:
				fields[i] = "1997-01-01"
			}
		}
		return fields
	}
	post := func(path, body string) error {
		resp, err := http.Post("http://"+addr+path, "application/octet-stream", strings.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, b)
		}
		return nil
	}
	// One row per format: NDJSON array, then delimited text.
	arr, _ := json.Marshal(toJSONRow(tab.Schema.Cols, mkRow(1)))
	if err := post("/ingest?table="+table, string(arr)+"\n"); err != nil {
		return err
	}
	if err := post("/ingest?table="+table+"&format=delim&delim=|", strings.Join(mkRow(2), "|")+"\n"); err != nil {
		return err
	}
	after, err := count()
	if err != nil {
		return err
	}
	if after != before+2 {
		return fmt.Errorf("count after ingest = %d, want %d", after, before+2)
	}
	if err := eng.Compact(context.Background()); err != nil {
		return err
	}
	final, err := count()
	if err != nil {
		return err
	}
	if final != after {
		return fmt.Errorf("count after compact = %d, want %d", final, after)
	}
	fmt.Printf("smoke: ingested 2 rows into %s (count %d -> %d), compacted clean\n", table, before, final)
	return nil
}

// smokeApprox round-trips a COUNT(DISTINCT) through the real listener
// with the X-Approx-OK opt-in header and checks the response carries
// the approximate-tier contract fields.
func smokeApprox(eng *core.Engine, addr string) error {
	names := eng.Catalog().Tables()
	if len(names) == 0 {
		return fmt.Errorf("no tables")
	}
	table := names[0]
	col := eng.Catalog().Table(table).Schema.Cols[0].Name
	sql := fmt.Sprintf("SELECT count(distinct %s) AS c FROM %s", col, table)
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/query", strings.NewReader(sql))
	if err != nil {
		return err
	}
	req.Header.Set("X-Approx-OK", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /query: status %d: %s", resp.StatusCode, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		return fmt.Errorf("/query response is not JSON: %w", err)
	}
	if qr.NumRows != 1 || qr.Dispatch == "" {
		return fmt.Errorf("distinct query response malformed: %s", body)
	}
	if qr.Approx && (qr.ErrorBound <= 0 || qr.Confidence <= 0) {
		return fmt.Errorf("approx answer without accuracy contract: %s", body)
	}
	fmt.Printf("smoke: approx %q dispatch=%s approx=%t bound=%g\n", sql, qr.Dispatch, qr.Approx, qr.ErrorBound)
	return nil
}

// toJSONRow converts delimited text fields into JSON-encodable values
// per the schema (NDJSON array form).
func toJSONRow(cols []storage.ColumnDef, fields []string) []interface{} {
	out := make([]interface{}, len(fields))
	for i, f := range fields {
		switch cols[i].Kind {
		case storage.Int64:
			n, _ := strconv.ParseInt(f, 10, 64)
			out[i] = n
		case storage.Float64:
			x, _ := strconv.ParseFloat(f, 64)
			out[i] = x
		default:
			out[i] = f
		}
	}
	return out
}
