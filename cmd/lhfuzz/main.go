// Command lhfuzz drives the differential/metamorphic correctness
// harness from the shell: it generates random schema+data+query cases,
// runs each through its oracle lane (brute-force reference evaluator,
// pairwise BLAS kernels, metamorphic identities, dictionary
// invariants), and on the first disagreement shrinks the case to a
// minimal JSON artifact suitable for committing to a testdata/
// directory.
//
// Usage:
//
//	lhfuzz [-n 1000] [-seed 1] [-duration 30s] [-lane refeval] [-out DIR]
//	lhfuzz -replay repro.json
//
// Exit status is 1 when any disagreement was found (the shrunken repro
// path is printed), 0 on a clean run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/difftest"
)

type lane struct {
	name string
	gen  func(*difftest.Gen) (*difftest.Case, *difftest.QuerySpec)
}

var lanes = []lane{
	{"refeval", func(g *difftest.Gen) (*difftest.Case, *difftest.QuerySpec) { return g.Candidate() }},
	{"count-partition", func(g *difftest.Gen) (*difftest.Case, *difftest.QuerySpec) { return g.GenCountPartitionCase(), nil }},
	{"permutation", func(g *difftest.Gen) (*difftest.Case, *difftest.QuerySpec) { return g.GenPermutationCase(), nil }},
	{"reassociation", func(g *difftest.Gen) (*difftest.Case, *difftest.QuerySpec) { return g.GenReassociationCase(), nil }},
	{"spmv", func(g *difftest.Gen) (*difftest.Case, *difftest.QuerySpec) { return g.GenSpMVCase(), nil }},
	{"spmm", func(g *difftest.Gen) (*difftest.Case, *difftest.QuerySpec) { return g.GenSpMMCase(), nil }},
	{"dict", func(g *difftest.Gen) (*difftest.Case, *difftest.QuerySpec) { return g.GenDictCase(), nil }},
}

func main() {
	n := flag.Int("n", 1000, "number of generated cases (ignored with -duration)")
	seed := flag.Int64("seed", 1, "base seed; case i uses seed+i")
	dur := flag.Duration("duration", 0, "run for this long instead of a fixed count")
	laneName := flag.String("lane", "", "restrict to one lane (refeval, count-partition, permutation, reassociation, spmv, spmm, dict)")
	out := flag.String("out", "", "directory for shrunken repro artifacts (default: temp dir)")
	replay := flag.String("replay", "", "replay one JSON case artifact and exit")
	flag.Parse()

	if *replay != "" {
		os.Exit(replayFile(*replay))
	}

	active := lanes
	if *laneName != "" {
		active = nil
		for _, l := range lanes {
			if l.name == *laneName {
				active = []lane{l}
			}
		}
		if active == nil {
			fmt.Fprintf(os.Stderr, "lhfuzz: unknown lane %q\n", *laneName)
			os.Exit(2)
		}
	}

	deadline := time.Time{}
	if *dur > 0 {
		deadline = time.Now().Add(*dur)
	}
	stats := map[string]int{}
	skips := 0
	for i := 0; ; i++ {
		if deadline.IsZero() {
			if i >= *n {
				break
			}
		} else if !time.Now().Before(deadline) {
			break
		}
		l := active[i%len(active)]
		g := difftest.NewGen(*seed + int64(i))
		c, spec := l.gen(g)
		o := difftest.RunLane(c)
		switch o.Verdict {
		case difftest.Agree:
			stats[l.name]++
		case difftest.Skip:
			skips++
		case difftest.Disagree:
			fail(l.name, c, spec, o, *out)
		}
	}
	total := 0
	for _, l := range active {
		fmt.Printf("%-16s %6d agreed\n", l.name, stats[l.name])
		total += stats[l.name]
	}
	fmt.Printf("%-16s %6d (generator outside supported subset)\n", "skipped", skips)
	fmt.Printf("lhfuzz: %d cases, zero disagreements\n", total)
}

// fail shrinks the disagreeing case, writes the artifact, and exits 1.
func fail(laneName string, c *difftest.Case, spec *difftest.QuerySpec, o difftest.Outcome, outDir string) {
	fmt.Fprintf(os.Stderr, "lhfuzz: %s lane disagreement\n  SQL: %s\n  %s\n", laneName, c.SQL, o.Detail)
	c.Note = fmt.Sprintf("lane=%s; first detail: %s", laneName, o.Detail)
	red := difftest.Reduce(c, spec, difftest.DefaultCheck)
	var path string
	var err error
	if outDir != "" {
		if err = os.MkdirAll(outDir, 0o755); err == nil {
			path = filepath.Join(outDir, fmt.Sprintf("lhfuzz-%s-%d.json", laneName, red.Seed))
			err = os.WriteFile(path, red.Marshal(), 0o644)
		}
	} else {
		var f *os.File
		f, err = os.CreateTemp("", "lhfuzz-"+laneName+"-*.json")
		if err == nil {
			_, err = f.Write(red.Marshal())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			path = f.Name()
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lhfuzz: could not write repro (%v); artifact follows\n%s\n", err, red.Marshal())
	} else {
		fmt.Fprintf(os.Stderr, "lhfuzz: shrunken repro (%d tables, SQL %q) written to %s\n",
			len(red.Tables), red.SQL, path)
	}
	os.Exit(1)
}

// replayFile re-runs one committed artifact through its lane.
func replayFile(path string) int {
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lhfuzz: %v\n", err)
		return 2
	}
	c, err := difftest.UnmarshalCase(b)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lhfuzz: %s: %v\n", path, err)
		return 2
	}
	o := difftest.RunLane(c)
	switch o.Verdict {
	case difftest.Disagree:
		fmt.Fprintf(os.Stderr, "lhfuzz: %s DISAGREES\n  SQL: %s\n  %s\n", path, c.SQL, o.Detail)
		return 1
	case difftest.Skip:
		fmt.Printf("lhfuzz: %s skipped (outside supported subset): %s\n", path, o.Detail)
	default:
		fmt.Printf("lhfuzz: %s agrees (lane %s)\n", path, laneOf(c))
	}
	return 0
}

func laneOf(c *difftest.Case) string {
	if c.Lane == "" {
		return "refeval"
	}
	return c.Lane
}
