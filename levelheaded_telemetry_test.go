package levelheaded_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	lh "repro"
	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/tpch"
)

// TestTraceSpanTree runs TPC-H Q5 — the paper's 2-node GHD plan — and
// checks the recorded span hierarchy: every span nests inside its
// parent, one node span per GHD node, and the node spans' kernel
// counters sum exactly to the query totals.
func TestTraceSpanTree(t *testing.T) {
	eng := core.New()
	if _, err := tpch.Populate(eng.Catalog(), 0.01, 2026); err != nil {
		t.Fatal(err)
	}
	res, err := eng.QueryContext(context.Background(), tpch.Queries["q5"])
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st == nil || st.Trace == nil {
		t.Fatal("query stats carry no trace")
	}
	spans := st.Trace.Spans()
	if len(spans) < 4 {
		t.Fatalf("expected query+phases+nodes, got %d spans", len(spans))
	}

	byID := map[telemetry.SpanID]*telemetry.Span{}
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}

	var root *telemetry.Span
	nodeSpans := 0
	var nodeTotal, nodeBytes uint64
	for i := range spans {
		sp := &spans[i]
		if sp.End < sp.Start {
			t.Fatalf("span %q still open after the query finished", sp.Name)
		}
		if sp.Parent == 0 {
			if root != nil {
				t.Fatalf("two roots: %q and %q", root.Name, sp.Name)
			}
			root = sp
			continue
		}
		parent, ok := byID[sp.Parent]
		if !ok {
			t.Fatalf("span %q has unknown parent %d", sp.Name, sp.Parent)
		}
		// Children nest inside their parents on the monotonic clock.
		if sp.Start < parent.Start || sp.End > parent.End {
			t.Fatalf("span %q [%d,%d] escapes parent %q [%d,%d]",
				sp.Name, sp.Start, sp.End, parent.Name, parent.Start, parent.End)
		}
		if sp.Kind == telemetry.SpanNode {
			nodeSpans++
			nodeTotal += sp.Stats.Total()
			nodeBytes += sp.Stats.BytesOut
		}
	}
	if root == nil || root.Kind != telemetry.SpanQuery {
		t.Fatalf("no query root span (root=%+v)", root)
	}
	if st.GHDNodes < 2 {
		t.Fatalf("chain query should span multiple GHD nodes, got %d", st.GHDNodes)
	}
	if nodeSpans != st.GHDNodes {
		t.Fatalf("node spans = %d, GHD nodes = %d", nodeSpans, st.GHDNodes)
	}
	// Per-node kernel counters are attributed exactly once: their sum is
	// the query's total.
	if nodeTotal != st.Intersect.Total() || nodeBytes != st.Intersect.BytesOut {
		t.Fatalf("node span counters (isect=%d bytes=%d) != query totals (isect=%d bytes=%d)",
			nodeTotal, nodeBytes, st.Intersect.Total(), st.Intersect.BytesOut)
	}

	tree := st.Trace.TreeString()
	for _, want := range []string{"query", "execute", "node ["} {
		if !strings.Contains(tree, want) {
			t.Fatalf("TreeString missing %q:\n%s", want, tree)
		}
	}

	// The Chrome export is valid trace-event JSON with one event per span.
	data, err := st.Trace.ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("chrome trace not JSON: %v", err)
	}
	if len(events) != len(spans) {
		t.Fatalf("chrome events = %d, spans = %d", len(events), len(spans))
	}
}

func TestExplainAnalyzeShowsSpans(t *testing.T) {
	eng := triangleEngine(t)
	out, err := eng.ExplainAnalyze(triangleSQL)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"spans:", "execute", "node ["} {
		if !strings.Contains(out, want) {
			t.Fatalf("EXPLAIN ANALYZE missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsQuantilesAndRegistry(t *testing.T) {
	eng := triangleEngine(t)
	for i := 0; i < 3; i++ {
		if _, err := eng.Query(context.Background(), triangleSQL); err != nil {
			t.Fatal(err)
		}
	}
	snap := eng.Metrics().Snapshot()
	for _, key := range []string{"lat_total_p50_ns", "lat_total_p99_ns", "lat_generic_wcoj_p50_ns"} {
		if snap[key] <= 0 {
			t.Fatalf("snapshot missing latency quantile %s: %v", key, snap)
		}
	}
	// Quantiles are derived gauges: the summable counter form excludes
	// them so fleet aggregation cannot double-count.
	if _, ok := eng.Metrics().SnapshotCounters()["lat_total_p50_ns"]; ok {
		t.Fatal("SnapshotCounters leaked a derived gauge")
	}
	reg := eng.Telemetry().Registry
	if reg.NumActive() != 0 {
		t.Fatalf("queries still registered after completion: %d", reg.NumActive())
	}
	ids := reg.TraceIDs()
	if len(ids) != 3 {
		t.Fatalf("retained traces = %d", len(ids))
	}
	if tr := reg.Trace(ids[0]); tr == nil || tr.SQL() != triangleSQL {
		t.Fatalf("retained trace lookup failed: %v", tr)
	}
}

func TestServeDebugEndToEnd(t *testing.T) {
	eng := triangleEngine(t)
	if _, err := eng.Query(context.Background(), triangleSQL); err != nil {
		t.Fatal(err)
	}
	srv, err := lh.ServeDebug("127.0.0.1:0", eng.Telemetry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"levelheaded_queries 1",
		`levelheaded_query_latency_seconds_bucket{class="generic-wcoj"`,
		`levelheaded_phase_latency_seconds_bucket{phase="total"`,
		`le="+Inf"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	eng := lh.New(lh.WithSlowQueryLog(&buf, 0)) // threshold 0: log everything
	tab, err := eng.CreateTable(lh.Schema{Name: "edges", Cols: []lh.ColumnDef{
		{Name: "src", Kind: lh.Int64, Role: lh.Key, Domain: "node"},
		{Name: "dst", Kind: lh.Int64, Role: lh.Key, Domain: "node"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]int64{{0, 1}, {1, 2}, {0, 2}} {
		if err := tab.AppendRow(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Query(context.Background(), triangleSQL); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(context.Background(), "SELEC nope"); err == nil {
		t.Fatal("bad SQL did not error")
	}

	type entry struct {
		TS       string `json:"ts"`
		QueryID  uint64 `json:"query_id"`
		SQL      string `json:"sql"`
		TotalNs  int64  `json:"total_ns"`
		Dispatch string `json:"dispatch"`
		Rows     int    `json:"rows"`
		Error    string `json:"error"`
	}
	var entries []entry
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("slow log line is not JSON: %v (%s)", err, sc.Text())
		}
		entries = append(entries, e)
	}
	if len(entries) != 2 {
		t.Fatalf("slow log entries = %d", len(entries))
	}
	ok := entries[0]
	if ok.SQL != triangleSQL || ok.TotalNs <= 0 || ok.Dispatch != "generic-wcoj" || ok.Rows != 1 || ok.Error != "" {
		t.Fatalf("good-query entry = %+v", ok)
	}
	if _, err := time.Parse(time.RFC3339Nano, ok.TS); err != nil {
		t.Fatalf("timestamp not RFC3339: %q", ok.TS)
	}
	bad := entries[1]
	if bad.Error == "" || bad.SQL != "SELEC nope" {
		t.Fatalf("failed-query entry = %+v", bad)
	}
}
