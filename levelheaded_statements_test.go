package levelheaded_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"regexp"
	"strings"
	"testing"

	lh "repro"
)

// TestStatementsEndToEnd drives a mixed workload through a real engine
// and checks the per-fingerprint statement store: grouping by shape
// across literal changes, call counts, and the est-vs-actual cost audit
// for the generic WCOJ path.
func TestStatementsEndToEnd(t *testing.T) {
	eng := triangleEngine(t)
	ctx := context.Background()

	// Two runs of the join shape, plus two literal variants of a scan
	// shape (they must collapse into one fingerprint).
	for i := 0; i < 2; i++ {
		if _, err := eng.Query(ctx, triangleSQL); err != nil {
			t.Fatal(err)
		}
	}
	for _, sql := range []string{
		"SELECT count(*) AS c FROM edges WHERE src > 1",
		"SELECT count(*) AS c FROM edges WHERE src > 4",
	} {
		if _, err := eng.Query(ctx, sql); err != nil {
			t.Fatal(err)
		}
	}

	snaps := eng.Statements("", 0)
	if len(snaps) != 2 {
		t.Fatalf("tracked fingerprints = %d, want 2 (join shape + scan shape): %+v", len(snaps), snaps)
	}
	byCalls := map[uint64]lh.StatementSnapshot{}
	for _, s := range snaps {
		byCalls[s.Calls] = s
		if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(s.FingerprintHex) {
			t.Errorf("fingerprint hex = %q, want 16 hex digits", s.FingerprintHex)
		}
		if s.Calls != 2 || s.Errors != 0 || s.TotalNs <= 0 || s.MeanNs <= 0 {
			t.Errorf("statement %q: calls=%d errors=%d total=%d mean=%d",
				s.Text, s.Calls, s.Errors, s.TotalNs, s.MeanNs)
		}
	}
	var join lh.StatementSnapshot
	found := false
	for _, s := range snaps {
		if strings.Contains(s.Text, "e1, edges") || strings.Contains(s.Text, "edges as e1") {
			join, found = s, true
		}
	}
	if !found {
		t.Fatalf("join shape not tracked: %+v", snaps)
	}
	if len(join.LastOrder) == 0 {
		t.Errorf("join statement has no attribute order: %+v", join)
	}
	if join.EstCost <= 0 || join.ActualCost <= 0 || join.CostRatio <= 0 {
		t.Errorf("join cost audit empty: est=%g actual=%g ratio=%g",
			join.EstCost, join.ActualCost, join.CostRatio)
	}
	if join.Rows != 2 { // one count row per run
		t.Errorf("join rows = %d, want 2", join.Rows)
	}
}

// TestStatementFingerprintOnStats checks the per-query surfaces: the
// fingerprint rides Result.Stats (cold and plan-cache-hit runs agree),
// the WCOJ path records per-node NodeCosts, and EXPLAIN ANALYZE renders
// both.
func TestStatementFingerprintOnStats(t *testing.T) {
	eng := triangleEngine(t)
	ctx := context.Background()
	res1, err := eng.Query(ctx, triangleSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.Fingerprint == 0 || res1.Stats.FingerprintText == "" {
		t.Fatalf("cold run has no fingerprint: %+v", res1.Stats.Fingerprint)
	}
	if len(res1.Stats.NodeCosts) == 0 {
		t.Fatal("generic WCOJ run recorded no NodeCosts")
	}
	for _, nc := range res1.Stats.NodeCosts {
		if len(nc.Order) == 0 || nc.Est <= 0 || nc.Actual <= 0 {
			t.Errorf("node cost audit incomplete: %+v", nc)
		}
		if nc.Ratio <= 0 {
			t.Errorf("node ratio = %g, want > 0 with est %g", nc.Ratio, nc.Est)
		}
	}
	res2, err := eng.Query(ctx, triangleSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Stats.PlanCached {
		t.Fatal("second run should hit the plan cache")
	}
	if res2.Stats.Fingerprint != res1.Stats.Fingerprint {
		t.Fatalf("plan-cache hit changed the fingerprint: %x vs %x",
			res2.Stats.Fingerprint, res1.Stats.Fingerprint)
	}

	out, err := eng.ExplainAnalyze(triangleSQL)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fingerprint: ", "cost audit [", "ratio="} {
		if !strings.Contains(out, want) {
			t.Fatalf("EXPLAIN ANALYZE missing %q:\n%s", want, out)
		}
	}
}

// TestSlowLogCarriesFingerprint checks the slow-log satellite: logged
// queries carry the statement fingerprint; statements that never parsed
// omit the field.
func TestSlowLogCarriesFingerprint(t *testing.T) {
	var buf bytes.Buffer
	eng := lh.New(lh.WithSlowQueryLog(&buf, 0))
	tab, err := eng.CreateTable(lh.Schema{Name: "edges", Cols: []lh.ColumnDef{
		{Name: "src", Kind: lh.Int64, Role: lh.Key, Domain: "node"},
		{Name: "dst", Kind: lh.Int64, Role: lh.Key, Domain: "node"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]int64{{0, 1}, {1, 2}, {0, 2}} {
		if err := tab.AppendRow(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	if _, err := eng.Query(ctx, "SELECT count(*) AS c FROM edges"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(ctx, "SELEC nope"); err == nil {
		t.Fatal("bad SQL did not error")
	}
	type entry struct {
		SQL         string `json:"sql"`
		Fingerprint string `json:"fingerprint"`
		Error       string `json:"error"`
	}
	var entries []entry
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("slow log line not JSON: %v (%s)", err, sc.Text())
		}
		entries = append(entries, e)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(entries[0].Fingerprint) {
		t.Fatalf("good query fingerprint = %q, want 16 hex digits", entries[0].Fingerprint)
	}
	if entries[1].Fingerprint != "" {
		t.Fatalf("unparsed query carries fingerprint %q, want omitted", entries[1].Fingerprint)
	}
	// The statement store counted the good query but skipped the
	// unparseable one (fingerprint 0).
	snaps := eng.Statements("", 0)
	if len(snaps) != 1 || snaps[0].Errors != 0 {
		t.Fatalf("statement store after parse error: %+v", snaps)
	}
	if snaps[0].FingerprintHex != entries[0].Fingerprint {
		t.Fatalf("slow-log fingerprint %q != store fingerprint %q",
			entries[0].Fingerprint, snaps[0].FingerprintHex)
	}
}
