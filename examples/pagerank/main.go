// Command pagerank runs power-iteration PageRank entirely as SQL:
// each iteration is one sparse matrix–vector multiplication — the SMV
// kernel of Table II — against the column-normalized adjacency matrix.
// This is the workload class the paper's introduction motivates:
// machine-learning-style iteration expressed and executed inside the
// relational engine, with no export to an external LA package.
//
// Usage: pagerank [-nodes 5000] [-edges 50000] [-iters 20]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"
	"time"

	lh "repro"
)

func main() {
	nodes := flag.Int("nodes", 5000, "vertex count")
	edges := flag.Int("edges", 50000, "edge count")
	iters := flag.Int("iters", 20, "power iterations")
	damping := flag.Float64("d", 0.85, "damping factor")
	flag.Parse()

	// Random graph with a few hub pages.
	r := rand.New(rand.NewSource(7))
	type edge struct{ s, d int64 }
	seen := map[edge]bool{}
	outDeg := make([]int, *nodes)
	var es []edge
	for len(es) < *edges {
		e := edge{int64(r.Intn(*nodes)), int64(r.Intn(*nodes / 10))}
		if r.Intn(3) > 0 {
			e.d = int64(r.Intn(*nodes))
		}
		if e.s == e.d || seen[e] {
			continue
		}
		seen[e] = true
		es = append(es, e)
		outDeg[e.s]++
	}

	eng := lh.New()
	// The transition matrix Mᵀ stored as a relation: M[j,i] = 1/outdeg(i)
	// for each edge i→j, so rank' = Mᵀ·rank is one SMV.
	m, err := eng.CreateTable(lh.Schema{Name: "m", Cols: []lh.ColumnDef{
		{Name: "i", Kind: lh.Int64, Role: lh.Key, Domain: "node"},
		{Name: "j", Kind: lh.Int64, Role: lh.Key, Domain: "node"},
		{Name: "v", Kind: lh.Float64, Role: lh.Annotation},
	}})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range es {
		if err := m.Append(e.d, e.s, 1/float64(outDeg[e.s])); err != nil {
			log.Fatal(err)
		}
	}
	// Guarantee every node exists in the shared domain.
	diag, err := eng.CreateTable(lh.Schema{Name: "nodes", Cols: []lh.ColumnDef{
		{Name: "id", Kind: lh.Int64, Role: lh.Key, Domain: "node", PK: true},
		{Name: "one", Kind: lh.Float64, Role: lh.Annotation},
	}})
	if err != nil {
		log.Fatal(err)
	}
	for n := 0; n < *nodes; n++ {
		if err := diag.Append(int64(n), 1.0); err != nil {
			log.Fatal(err)
		}
	}
	// The rank vector lives in its own table, rebuilt per iteration.
	mkVec := func(eng *lh.Engine, name string, vals []float64) *lh.Engine {
		t, err := eng.CreateTable(lh.Schema{Name: name, Cols: []lh.ColumnDef{
			{Name: "k", Kind: lh.Int64, Role: lh.Key, Domain: "node"},
			{Name: "x", Kind: lh.Float64, Role: lh.Annotation},
		}})
		if err != nil {
			log.Fatal(err)
		}
		for k, v := range vals {
			if err := t.Append(int64(k), v); err != nil {
				log.Fatal(err)
			}
		}
		return eng
	}

	rank := make([]float64, *nodes)
	for i := range rank {
		rank[i] = 1 / float64(*nodes)
	}

	t0 := time.Now()
	for it := 0; it < *iters; it++ {
		// A fresh engine per iteration keeps the example simple (the rank
		// vector is replaced wholesale each round, not appended to); the
		// matrix trie rebuild is the dominant cost and is shared across
		// the comparison anyway.
		iterEng := lh.New()
		cloneTables(eng, iterEng)
		mkVec(iterEng, "rank", rank)
		res, err := iterEng.Query(context.Background(), `SELECT m.i, sum(m.v * rank.x) as y
			FROM m, rank WHERE m.j = rank.k GROUP BY m.i`)
		if err != nil {
			log.Fatal(err)
		}
		next := make([]float64, *nodes)
		base := (1 - *damping) / float64(*nodes)
		for i := range next {
			next[i] = base
		}
		for rrow := 0; rrow < res.NumRows; rrow++ {
			next[res.Col("i").I64[rrow]] += *damping * res.Col("y").F64[rrow]
		}
		// Redistribute dangling mass to keep the vector stochastic.
		var total float64
		for _, v := range next {
			total += v
		}
		for i := range next {
			next[i] /= total
		}
		rank = next
	}
	sqlTime := time.Since(t0)

	// Reference: plain Go power iteration.
	ref := make([]float64, *nodes)
	for i := range ref {
		ref[i] = 1 / float64(*nodes)
	}
	t0 = time.Now()
	for it := 0; it < *iters; it++ {
		next := make([]float64, *nodes)
		base := (1 - *damping) / float64(*nodes)
		for i := range next {
			next[i] = base
		}
		for _, e := range es {
			next[e.d] += *damping * ref[e.s] / float64(outDeg[e.s])
		}
		var total float64
		for _, v := range next {
			total += v
		}
		for i := range next {
			next[i] /= total
		}
		ref = next
	}
	refTime := time.Since(t0)

	maxDiff := 0.0
	for i := range rank {
		if d := math.Abs(rank[i] - ref[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("pagerank over %d nodes / %d edges, %d iterations\n", *nodes, len(es), *iters)
	fmt.Printf("  as SQL (incl. per-iteration load): %v\n", sqlTime.Round(time.Millisecond))
	fmt.Printf("  native power iteration:            %v\n", refTime.Round(time.Millisecond))
	fmt.Printf("  max |sql - native| = %.3e\n", maxDiff)

	type nr struct {
		id int64
		r  float64
	}
	top := make([]nr, *nodes)
	for i, v := range rank {
		top[i] = nr{int64(i), v}
	}
	sort.Slice(top, func(a, b int) bool { return top[a].r > top[b].r })
	fmt.Println("top pages:")
	for _, x := range top[:5] {
		fmt.Printf("  node %-6d rank %.5f\n", x.id, x.r)
	}
}

// cloneTables copies the immutable matrix and node tables into a fresh
// engine.
func cloneTables(src, dst *lh.Engine) {
	for _, name := range []string{"m", "nodes"} {
		st := src.Table(name)
		t, err := dst.CreateTable(st.Schema)
		if err != nil {
			log.Fatal(err)
		}
		data := map[string]interface{}{}
		for _, col := range st.Cols {
			switch {
			case col.Ints != nil:
				data[col.Def.Name] = col.Ints
			case col.Floats != nil:
				data[col.Def.Name] = col.Floats
			case col.Strs != nil:
				data[col.Def.Name] = col.Strs
			}
		}
		if err := t.SetColumnData(data); err != nil {
			log.Fatal(err)
		}
	}
}
