// Command voter_pipeline runs the paper's §VII voter-classification
// application (Figure 6): a SQL join + filter, one-hot feature
// encoding, and five iterations of logistic regression — executed four
// ways: unified (LevelHeaded), MonetDB/Scikit-learn-style,
// Pandas/Scikit-learn-style, and Spark-style.
//
// Usage: voter_pipeline [-voters 200000] [-precincts 500]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/storage"
	"repro/internal/voter"
)

func main() {
	nVoters := flag.Int("voters", 200000, "number of voters (paper: 7,503,555)")
	nPrecincts := flag.Int("precincts", 500, "number of precincts (paper: 2,751)")
	flag.Parse()

	cat := storage.NewCatalog()
	if err := voter.Generate(cat, *nVoters, *nPrecincts, 2026); err != nil {
		log.Fatal(err)
	}
	if err := cat.Freeze(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("voter classification: %d voters, %d precincts, %d training iterations\n\n",
		*nVoters, *nPrecincts, voter.Iters)

	run := func(f func(*storage.Catalog, int) (voter.Phases, error)) voter.Phases {
		p, err := f(cat, 0)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	results := []voter.Phases{
		run(voter.RunUnified),
		run(voter.RunMonetSklearn),
		run(voter.RunPandasSklearn),
		run(voter.RunSpark),
	}

	fmt.Printf("%-18s %10s %10s %10s %10s %8s %6s\n", "system", "sql", "encode", "train", "total", "rows", "acc")
	for _, p := range results {
		fmt.Printf("%-18s %10s %10s %10s %10s %8d %6.3f\n",
			p.System, rd(p.SQL), rd(p.Encode), rd(p.Train), rd(p.Total()), p.N, p.Acc)
	}
	base := results[0].Total()
	fmt.Println()
	for _, p := range results[1:] {
		fmt.Printf("levelheaded is %.1fx faster than %s end-to-end\n",
			float64(p.Total())/float64(base), p.System)
	}
}

func rd(d time.Duration) time.Duration { return d.Round(time.Microsecond) }
