// Command graph_triangles counts directed triangles with the WCOJ
// engine — the query class where worst-case optimal joins hold an
// asymptotic advantage over pairwise plans (paper §I: the triangle
// query's AGM bound is |E|^1.5, while any pairwise plan can touch
// |E|² intermediate pairs). The same cyclic self-join runs three ways:
//
//	levelheaded   one WCOJ pass, FHW 3/2 single-node GHD
//	pairwise      hash join e1⋈e2 materializing the open wedges, then ⋈e3
//	reference     adjacency-set counting (ground truth)
//
// On a skewed power-law-ish graph the wedge count explodes and the
// pairwise plan falls behind, exactly as §I describes.
//
// Usage: graph_triangles [-nodes 3000] [-edges 30000] [-hub 0.15]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	lh "repro"
)

func main() {
	nodes := flag.Int("nodes", 3000, "vertex count")
	edges := flag.Int("edges", 30000, "edge count")
	hub := flag.Float64("hub", 0.15, "fraction of edges attached to hub vertices (skew)")
	flag.Parse()

	r := rand.New(rand.NewSource(42))
	type edge struct{ s, d int64 }
	seen := map[edge]bool{}
	var es []edge
	hubs := *nodes / 50
	if hubs < 1 {
		hubs = 1
	}
	for len(es) < *edges {
		var e edge
		if r.Float64() < *hub {
			e = edge{int64(r.Intn(hubs)), int64(r.Intn(*nodes))}
		} else {
			e = edge{int64(r.Intn(*nodes)), int64(r.Intn(*nodes))}
		}
		if e.s == e.d || seen[e] {
			continue
		}
		seen[e] = true
		es = append(es, e)
	}

	eng := lh.New()
	tab, err := eng.CreateTable(lh.Schema{Name: "edges", Cols: []lh.ColumnDef{
		{Name: "src", Kind: lh.Int64, Role: lh.Key, Domain: "node"},
		{Name: "dst", Kind: lh.Int64, Role: lh.Key, Domain: "node"},
	}})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range es {
		if err := tab.Append(e.s, e.d); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Compact(context.Background()); err != nil {
		log.Fatal(err)
	}

	const q = `SELECT count(*) as triangles
		FROM edges e1, edges e2, edges e3
		WHERE e1.dst = e2.src AND e3.src = e1.src AND e3.dst = e2.dst`

	// Warm the trie cache, then time the hot run.
	ctx := context.Background()
	if _, err := eng.Query(ctx, q); err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	res, err := eng.Query(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	wcojTime := time.Since(t0)
	wcoj := res.Col("triangles").F64[0]

	// Pairwise plan: e1 ⋈ e2 on dst=src materializes every wedge.
	t0 = time.Now()
	bySrc := map[int64][]int64{}
	for _, e := range es {
		bySrc[e.s] = append(bySrc[e.s], e.d)
	}
	edgeSet := make(map[edge]bool, len(es))
	for _, e := range es {
		edgeSet[e] = true
	}
	wedges := 0
	pair := 0.0
	for _, e1 := range es {
		for _, c := range bySrc[e1.d] {
			wedges++
			if edgeSet[edge{e1.s, c}] {
				pair++
			}
		}
	}
	pairTime := time.Since(t0)

	// Reference via sorted adjacency intersection.
	t0 = time.Now()
	adj := make(map[int64][]int64, len(bySrc))
	for s, ds := range bySrc {
		sorted := append([]int64(nil), ds...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		adj[s] = sorted
	}
	ref := 0.0
	for _, e := range es {
		ref += float64(intersectCount(adj[e.s], adj[e.d]))
	}
	refTime := time.Since(t0)

	fmt.Printf("graph: %d nodes, %d edges (%d wedges materialized by the pairwise plan)\n",
		*nodes, len(es), wedges)
	fmt.Printf("%-22s %12s  triangles=%.0f\n", "levelheaded (WCOJ)", wcojTime.Round(time.Microsecond), wcoj)
	fmt.Printf("%-22s %12s  triangles=%.0f\n", "pairwise (wedge join)", pairTime.Round(time.Microsecond), pair)
	fmt.Printf("%-22s %12s  triangles=%.0f\n", "adjacency reference", refTime.Round(time.Microsecond), ref)
	if wcoj != pair || wcoj != ref {
		log.Fatalf("count mismatch: wcoj=%v pairwise=%v ref=%v", wcoj, pair, ref)
	}
	fmt.Printf("\nplan:\n")
	plan, err := eng.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)
}

func intersectCount(a, b []int64) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
