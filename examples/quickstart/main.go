// Command quickstart shows the LevelHeaded public API end to end: define
// a schema with key and annotation attributes, load rows, and run both a
// BI-style aggregate join and a linear-algebra query through the same
// WCOJ engine.
package main

import (
	"context"
	"fmt"
	"log"

	lh "repro"
)

func main() {
	eng := lh.New()

	// A sparse matrix is just a relation: keys (i, j) in one shared
	// join domain, the value as an annotation (paper Fig. 3).
	matrix, err := eng.CreateTable(lh.Schema{
		Name: "matrix",
		Cols: []lh.ColumnDef{
			{Name: "i", Kind: lh.Int64, Role: lh.Key, Domain: "dim"},
			{Name: "j", Kind: lh.Int64, Role: lh.Key, Domain: "dim"},
			{Name: "v", Kind: lh.Float64, Role: lh.Annotation},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	// A small 4x4 example.
	cells := []struct {
		i, j int64
		v    float64
	}{
		{0, 0, 1}, {0, 2, 2}, {1, 1, 3}, {2, 0, 4}, {2, 3, 1}, {3, 2, 5},
	}
	for _, c := range cells {
		if err := matrix.Append(c.i, c.j, c.v); err != nil {
			log.Fatal(err)
		}
	}

	// An orders-like table joins the same engine.
	orders, err := eng.CreateTable(lh.Schema{
		Name: "orders",
		Cols: []lh.ColumnDef{
			{Name: "o_id", Kind: lh.Int64, Role: lh.Key, Domain: "order", PK: true},
			{Name: "o_region", Kind: lh.String, Role: lh.Annotation},
			{Name: "o_total", Kind: lh.Float64, Role: lh.Annotation},
			{Name: "o_date", Kind: lh.Date, Role: lh.Annotation},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	rows := []struct {
		id     int64
		region string
		total  float64
		date   string
	}{
		{1, "ASIA", 120, "1994-01-03"}, {2, "EUROPE", 80, "1994-02-11"},
		{3, "ASIA", 45, "1995-03-01"}, {4, "ASIA", 210, "1994-07-19"},
	}
	for _, r := range rows {
		if err := orders.Append(r.id, r.region, r.total, r.date); err != nil {
			log.Fatal(err)
		}
	}

	// BI query: filter + group + aggregate.
	ctx := context.Background()
	res, err := eng.Query(ctx, `SELECT o_region, sum(o_total) as total, count(*) as n
		FROM orders WHERE o_date < date '1995-01-01' GROUP BY o_region`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("revenue by region in 1994:")
	printResult(res)

	// LA query: sparse matrix squared, same engine, same storage.
	res, err = eng.Query(ctx, `SELECT m1.i, m2.j, sum(m1.v * m2.v) as v
		FROM matrix AS m1, matrix AS m2 WHERE m1.j = m2.i GROUP BY m1.i, m2.j`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmatrix * matrix (nonzeros):")
	printResult(res)

	// The compiled plan is inspectable: hypergraph, GHD, attribute order
	// with its cost terms.
	plan, err := eng.Explain(`SELECT m1.i, m2.j, sum(m1.v * m2.v) as v
		FROM matrix AS m1, matrix AS m2 WHERE m1.j = m2.i GROUP BY m1.i, m2.j`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEXPLAIN:")
	fmt.Print(plan)
}

func printResult(res *lh.Result) {
	for _, c := range res.Cols {
		fmt.Printf("%-14s", c.Name)
	}
	fmt.Println()
	for r := 0; r < res.NumRows; r++ {
		for _, c := range res.Cols {
			switch c.Kind {
			case lh.KindInt:
				fmt.Printf("%-14d", c.I64[r])
			case lh.KindString:
				fmt.Printf("%-14s", c.Str[r])
			default:
				fmt.Printf("%-14.4g", c.F64[r])
			}
		}
		fmt.Println()
	}
}
