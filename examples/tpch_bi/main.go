// Command tpch_bi runs the paper's seven TPC-H business-intelligence
// queries (Table II's BI half) on a generated scaled database and
// prints per-query timings alongside the HyPer- and MonetDB-style
// baseline engines.
//
// Usage: tpch_bi [-sf 0.01] [-runs 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/pairwise"
	"repro/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor (1.0 = 6M lineitems)")
	runs := flag.Int("runs", 3, "timed runs per query (best reported)")
	flag.Parse()

	eng := core.New()
	start := time.Now()
	sz, err := tpch.Populate(eng.Catalog(), *sf, 2026)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Freeze(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated TPC-H sf=%g: %d lineitems, %d orders, %d customers (%.1fs)\n\n",
		*sf, sz.Lineitem, sz.Orders, sz.Customer, time.Since(start).Seconds())

	pw := pairwise.New(eng.Catalog())
	cs := colstore.New(eng.Catalog())

	fmt.Printf("%-5s %12s %12s %12s %8s\n", "query", "levelheaded", "pairwise", "colstore", "rows")
	for _, name := range tpch.QueryNames {
		lhT, rows := best(*runs, func() int {
			res, err := eng.Query(tpch.Queries[name])
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			return res.NumRows
		})
		pwT, _ := best(*runs, func() int {
			r, err := pw.RunTPCH(name)
			if err != nil {
				log.Fatal(err)
			}
			return r.NumRows()
		})
		csT, _ := best(*runs, func() int {
			r, err := cs.RunTPCH(name)
			if err != nil {
				log.Fatal(err)
			}
			return r.NumRows()
		})
		fmt.Printf("%-5s %12s %12s %12s %8d\n", name, lhT, pwT, csT, rows)
	}
}

// best runs f n times and returns the fastest duration plus f's last
// return value.
func best(n int, f func() int) (time.Duration, int) {
	bestD := time.Duration(1<<62 - 1)
	rows := 0
	for i := 0; i < n; i++ {
		t0 := time.Now()
		rows = f()
		if d := time.Since(t0); d < bestD {
			bestD = d
		}
	}
	return bestD.Round(time.Microsecond), rows
}
