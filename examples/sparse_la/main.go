// Command sparse_la runs the paper's sparse linear-algebra kernels
// (SMV, SMM) as plain SQL aggregate-join queries on a synthetic
// CFD-style matrix, cross-checking the WCOJ engine against the CSR
// kernels in internal/blas and showing the §V-A2 attribute-order effect
// on sparse matrix multiplication.
//
// Usage: sparse_la [-profile harbor] [-scale 0.2]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/lagen"
)

func main() {
	profile := flag.String("profile", "harbor", "dataset profile: harbor, hv15r, nlp240")
	scale := flag.Float64("scale", 0.2, "size scale relative to the generator defaults")
	flag.Parse()

	spec, err := lagen.Profile(*profile, *scale)
	if err != nil {
		log.Fatal(err)
	}
	eng := core.New()
	nnz, err := lagen.LoadSparse(eng.Catalog(), spec, 7)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Freeze(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s-sim: n=%d nnz=%d (%.1f/row)\n\n", spec.Name, spec.N, nnz, float64(nnz)/float64(spec.N))

	// Reference CSR kernels.
	m := eng.Catalog().Table("matrix")
	iCol := m.Col("i").Ints
	jCol := m.Col("j").Ints
	i32 := make([]int32, len(iCol))
	j32 := make([]int32, len(jCol))
	for k := range iCol {
		i32[k], j32[k] = int32(iCol[k]), int32(jCol[k])
	}
	coo, _ := blas.NewCOO(spec.N, spec.N, i32, j32, m.Col("v").Floats)
	csr := blas.CompressCOO(coo)
	x := eng.Catalog().Table("vec").Col("x").Floats

	// SMV: once through SQL, once through CSR.
	t0 := time.Now()
	res, err := eng.Query(lagen.SMVQuery)
	if err != nil {
		log.Fatal(err)
	}
	sqlTime := time.Since(t0)
	// Warm run (tries cached, matching the paper's hot measurements).
	t0 = time.Now()
	res, err = eng.Query(lagen.SMVQuery)
	if err != nil {
		log.Fatal(err)
	}
	sqlHot := time.Since(t0)

	y := make([]float64, spec.N)
	t0 = time.Now()
	blas.SpMV(csr, x, y)
	csrTime := time.Since(t0)

	maxDiff := 0.0
	for r := 0; r < res.NumRows; r++ {
		i := res.Col("i").I64[r]
		if d := math.Abs(res.Col("y").F64[r] - y[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("SMV  levelheaded(cold)=%v levelheaded(hot)=%v csr=%v maxdiff=%.2e\n",
		sqlTime.Round(time.Microsecond), sqlHot.Round(time.Microsecond), csrTime.Round(time.Microsecond), maxDiff)

	// SMM with the cost-chosen (relaxed i,k,j) order vs Gustavson CSR.
	t0 = time.Now()
	res, err = eng.Query(lagen.SMMQuery)
	if err != nil {
		log.Fatal(err)
	}
	smmSQL := time.Since(t0)
	t0 = time.Now()
	c := blas.SpGEMM(csr, csr)
	smmCSR := time.Since(t0)
	fmt.Printf("SMM  levelheaded=%v csr=%v output nnz: sql=%d csr=%d\n",
		smmSQL.Round(time.Millisecond), smmCSR.Round(time.Millisecond), res.NumRows, c.NNZ())

	// The plan shows why this works: the optimizer picked the relaxed
	// [i, k, j] order (paper Fig. 5b).
	plan, err := eng.Explain(lagen.SMMQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSMM plan:")
	fmt.Print(plan)
}
